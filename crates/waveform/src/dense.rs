//! Dense (exact) binary-waveform sets over a finite time window.
//!
//! The abstract-waveform algebra is an *interval abstraction* of sets of
//! binary waveforms. This module provides the concrete side of that
//! abstraction for a finite window `[0, W)`: every binary waveform that is
//! stable after `W − 1` is encoded as a `W`-bit mask, and a [`DenseSet`] is
//! an exact set of such waveforms. Gate functions can be applied exactly by
//! enumeration, which yields ground-truth *projections* (§3.2 of the paper)
//! against which the closed-form interval narrowing rules are validated in
//! unit and property tests (soundness: an interval rule must never remove a
//! waveform that participates in a solution).
//!
//! The oracle evaluates gates with **delay 0**; that is not a loss of
//! generality because a gate with delay `d` is the delay-0 gate composed
//! with a time shift, and time shifts are bijections on the waveform space
//! that the interval algebra models exactly ([`Aw::shift`]).
//!
//! Window sizes are deliberately small (`W ≤ 16`); the oracle enumerates all
//! `2^W` waveforms.

use crate::{Aw, Level, Signal, Time};
use std::fmt;

/// Maximum supported window width.
pub const MAX_WIDTH: u32 = 16;

/// A binary waveform over the window `[0, W)`, stable after `W − 1`.
///
/// Bit `t` of `mask` is the value `f(t)`; for `t ≥ W − 1` the waveform keeps
/// the value of bit `W − 1` (its *settling value*).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DenseWaveform {
    mask: u32,
    width: u32,
}

impl DenseWaveform {
    /// Creates a waveform from its bitmask over a window of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds [`MAX_WIDTH`], or if `mask` has
    /// bits set outside the window.
    pub fn new(mask: u32, width: u32) -> Self {
        assert!(
            (1..=MAX_WIDTH).contains(&width),
            "window width out of range"
        );
        assert!(
            width == 32 || mask < (1u32 << width),
            "mask has bits outside the window"
        );
        DenseWaveform { mask, width }
    }

    /// The value `f(t)`; times past the window return the settling value and
    /// negative times are not represented (the window starts at 0).
    ///
    /// # Panics
    ///
    /// Panics if `t < 0`.
    pub fn value_at(self, t: i64) -> bool {
        assert!(t >= 0, "window waveforms start at time 0");
        // Saturate, don't truncate: a time past `u32::MAX` must read the
        // settling bit, not wrap around to a bit inside the window.
        let idx = u32::try_from(t).unwrap_or(u32::MAX).min(self.width - 1);
        (self.mask >> idx) & 1 == 1
    }

    /// The settling value (class) of the waveform.
    pub fn settle(self) -> Level {
        Level::from_bool((self.mask >> (self.width - 1)) & 1 == 1)
    }

    /// The last time the waveform differs from its settling value
    /// (`LD(f)`), or [`Time::NEG_INF`] for a constant waveform.
    pub fn last_difference(self) -> Time {
        let v = self.settle().to_bool();
        for t in (0..self.width - 1).rev() {
            if ((self.mask >> t) & 1 == 1) != v {
                return Time::new(t as i64);
            }
        }
        Time::NEG_INF
    }

    /// The raw window bitmask.
    pub fn mask(self) -> u32 {
        self.mask
    }

    /// The window width.
    pub fn width(self) -> u32 {
        self.width
    }
}

impl fmt::Display for DenseWaveform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in 0..self.width {
            write!(f, "{}", (self.mask >> t) & 1)?;
        }
        Ok(())
    }
}

/// An exact set of window waveforms, represented as a bitset over all
/// `2^width` masks.
///
/// # Examples
///
/// ```
/// use ltt_waveform::dense::DenseSet;
/// use ltt_waveform::{Signal, Level, Time, Aw};
///
/// // All waveforms of width 4 that settle to 1 with LD ∈ [1, 2]:
/// let sig = Signal::single_class(Level::One, Aw::new(Time::new(1), Time::new(2)));
/// let set = DenseSet::from_signal(sig, 4);
/// assert!(!set.is_empty());
/// // The narrowest signal containing the set round-trips the interval.
/// assert_eq!(set.to_narrowest_signal()[Level::One], sig[Level::One]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct DenseSet {
    width: u32,
    bits: Vec<u64>,
}

impl DenseSet {
    /// The empty set over a window of `width` bits.
    pub fn empty(width: u32) -> Self {
        assert!(
            (1..=MAX_WIDTH).contains(&width),
            "window width out of range"
        );
        let n = 1usize << width;
        DenseSet {
            width,
            bits: vec![0; n.div_ceil(64)],
        }
    }

    /// Every window waveform of the given width.
    pub fn full(width: u32) -> Self {
        let mut s = DenseSet::empty(width);
        let n = 1usize << width;
        for (i, word) in s.bits.iter_mut().enumerate() {
            let lo = i * 64;
            let hi = (lo + 64).min(n);
            if hi - lo == 64 {
                *word = u64::MAX;
            } else {
                *word = (1u64 << (hi - lo)) - 1;
            }
        }
        s
    }

    /// The exact concretization of an abstract waveform of class `level`:
    /// all window waveforms settling to `level` with `LD` in `aw`.
    pub fn from_aw(aw: Aw, level: Level, width: u32) -> Self {
        let mut s = DenseSet::empty(width);
        if aw.is_empty() {
            return s;
        }
        for mask in 0..(1u32 << width) {
            let w = DenseWaveform::new(mask, width);
            if w.settle() == level && aw.contains_time(w.last_difference()) {
                s.insert(w);
            }
        }
        s
    }

    /// The exact concretization of an abstract signal (union of both
    /// classes).
    pub fn from_signal(sig: Signal, width: u32) -> Self {
        let mut s = DenseSet::from_aw(sig[Level::Zero], Level::Zero, width);
        s.union_with(&DenseSet::from_aw(sig[Level::One], Level::One, width));
        s
    }

    /// Window width of the member waveforms.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Adds a waveform to the set.
    ///
    /// # Panics
    ///
    /// Panics if the waveform's width differs from the set's width.
    pub fn insert(&mut self, w: DenseWaveform) {
        assert_eq!(w.width, self.width, "waveform width mismatch");
        self.bits[(w.mask / 64) as usize] |= 1u64 << (w.mask % 64);
    }

    /// Whether the waveform is a member.
    pub fn contains(&self, w: DenseWaveform) -> bool {
        assert_eq!(w.width, self.width, "waveform width mismatch");
        (self.bits[(w.mask / 64) as usize] >> (w.mask % 64)) & 1 == 1
    }

    /// Whether the set has no members.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Number of member waveforms.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place set union.
    pub fn union_with(&mut self, other: &DenseSet) {
        assert_eq!(self.width, other.width, "window width mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// In-place set intersection.
    pub fn intersect_with(&mut self, other: &DenseSet) {
        assert_eq!(self.width, other.width, "window width mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a &= b;
        }
    }

    /// Whether `self ⊆ other` as plain sets.
    pub fn is_subset_of(&self, other: &DenseSet) -> bool {
        assert_eq!(self.width, other.width, "window width mismatch");
        self.bits.iter().zip(&other.bits).all(|(a, b)| a & !b == 0)
    }

    /// Iterates over the member waveforms.
    pub fn iter(&self) -> impl Iterator<Item = DenseWaveform> + '_ {
        let width = self.width;
        (0..(1u32 << self.width))
            .filter(move |&m| (self.bits[(m / 64) as usize] >> (m % 64)) & 1 == 1)
            .map(move |m| DenseWaveform::new(m, width))
    }

    /// The narrowest abstract signal containing this exact set — the target
    /// the interval projections must stay *at or above* to be sound.
    pub fn to_narrowest_signal(&self) -> Signal {
        let mut lo = [Time::POS_INF; 2];
        let mut hi = [Time::NEG_INF; 2];
        let mut seen = [false; 2];
        for w in self.iter() {
            let c = w.settle().index();
            let ld = w.last_difference();
            seen[c] = true;
            lo[c] = lo[c].min(ld);
            hi[c] = hi[c].max(ld);
        }
        let mk = |c: usize| {
            if seen[c] {
                Aw::new(lo[c], hi[c])
            } else {
                Aw::EMPTY
            }
        };
        Signal::new(mk(0), mk(1))
    }

    /// Exact relational projection through an `n`-input, delay-0 gate
    /// (§3.2): given input sets `inputs` and output set `out`, returns the
    /// projected input sets and output set — the members that participate in
    /// at least one consistent `(a₁, …, aₙ, s)` tuple with
    /// `s(t) = g(a₁(t), …, aₙ(t))` and `s ∈ out`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatches or if `inputs` is empty or longer than 3
    /// (enumeration cost grows as `2^(W·n)`).
    pub fn project_gate(
        gate: impl Fn(&[bool]) -> bool,
        inputs: &[&DenseSet],
        out: &DenseSet,
    ) -> (Vec<DenseSet>, DenseSet) {
        assert!(
            !inputs.is_empty() && inputs.len() <= 3,
            "oracle supports 1 to 3 gate inputs"
        );
        let width = out.width;
        for i in inputs {
            assert_eq!(i.width, width, "window width mismatch");
        }
        let mut proj_in: Vec<DenseSet> = inputs.iter().map(|_| DenseSet::empty(width)).collect();
        let mut proj_out = DenseSet::empty(width);

        let members: Vec<Vec<DenseWaveform>> = inputs.iter().map(|s| s.iter().collect()).collect();
        let mut idx = vec![0usize; inputs.len()];
        if members.iter().any(|m| m.is_empty()) {
            return (proj_in, proj_out);
        }
        let mut vals = vec![false; inputs.len()];
        loop {
            let tuple: Vec<DenseWaveform> = idx.iter().zip(&members).map(|(&i, m)| m[i]).collect();
            // Evaluate the output waveform pointwise over the window.
            let mut s_mask = 0u32;
            for t in 0..width {
                for (k, w) in tuple.iter().enumerate() {
                    vals[k] = w.value_at(t as i64);
                }
                if gate(&vals) {
                    s_mask |= 1 << t;
                }
            }
            let s = DenseWaveform::new(s_mask, width);
            if out.contains(s) {
                for (k, w) in tuple.iter().enumerate() {
                    proj_in[k].insert(*w);
                }
                proj_out.insert(s);
            }
            // Advance the odometer.
            let mut k = 0;
            loop {
                idx[k] += 1;
                if idx[k] < members[k].len() {
                    break;
                }
                idx[k] = 0;
                k += 1;
                if k == inputs.len() {
                    return (proj_in, proj_out);
                }
            }
        }
    }
}

impl fmt::Debug for DenseSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DenseSet(w={}, n={})", self.width, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waveform_settle_and_ld() {
        // width 4, mask 0b1011: f(0)=1 f(1)=1 f(2)=0 f(3)=1, settles to 1.
        let w = DenseWaveform::new(0b1011, 4);
        assert_eq!(w.settle(), Level::One);
        assert_eq!(w.last_difference(), Time::new(2));
        // Constant waveform: LD = −∞.
        let c = DenseWaveform::new(0b1111, 4);
        assert_eq!(c.last_difference(), Time::NEG_INF);
        let z = DenseWaveform::new(0b0000, 4);
        assert_eq!(z.settle(), Level::Zero);
        assert_eq!(z.last_difference(), Time::NEG_INF);
    }

    #[test]
    fn value_at_clamps_to_settling_value() {
        let w = DenseWaveform::new(0b100, 3);
        assert!(!w.value_at(0));
        assert!(w.value_at(2));
        assert!(w.value_at(100));
        // Regression: times past u32::MAX used to truncate (`t as u32`),
        // wrapping 2^32 to index 0 and reading a bit inside the window.
        assert!(w.value_at(1 << 32));
        assert!(w.value_at((1 << 32) + 1));
        assert!(w.value_at(i64::MAX));
        let falling = DenseWaveform::new(0b001, 3);
        assert!(!falling.value_at(1 << 32));
        assert!(!falling.value_at(i64::MAX));
    }

    #[test]
    fn full_set_has_all_masks() {
        let s = DenseSet::full(5);
        assert_eq!(s.len(), 32);
        let e = DenseSet::empty(5);
        assert!(e.is_empty());
        assert!(e.is_subset_of(&s));
    }

    #[test]
    fn from_signal_roundtrips_through_narrowest() {
        let sig = Signal::new(
            Aw::new(Time::new(0), Time::new(2)),
            Aw::new(Time::new(1), Time::new(1)),
        );
        let set = DenseSet::from_signal(sig, 4);
        assert_eq!(set.to_narrowest_signal(), sig);
    }

    #[test]
    fn from_signal_neg_inf_lmin_includes_constants() {
        let sig = Signal::single_class(Level::One, Aw::before(Time::new(1)));
        let set = DenseSet::from_signal(sig, 4);
        // Constant-1 (LD = −∞) must be included.
        assert!(set.contains(DenseWaveform::new(0b1111, 4)));
        // LD = 1 (f = 0011 reversed bit order: mask with bit1 differing)…
        assert!(set.contains(DenseWaveform::new(0b1100, 4)));
        // LD = 2 must be excluded.
        assert!(!set.contains(DenseWaveform::new(0b1000, 4)));
    }

    #[test]
    fn set_algebra() {
        let mut a = DenseSet::empty(3);
        a.insert(DenseWaveform::new(0b001, 3));
        a.insert(DenseWaveform::new(0b010, 3));
        let mut b = DenseSet::empty(3);
        b.insert(DenseWaveform::new(0b010, 3));
        b.insert(DenseWaveform::new(0b100, 3));
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 3);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.len(), 1);
        assert!(i.contains(DenseWaveform::new(0b010, 3)));
        assert!(i.is_subset_of(&a) && i.is_subset_of(&b));
        assert!(!a.is_subset_of(&b));
    }

    #[test]
    fn project_and_gate_restricts_inputs() {
        // AND gate, output constrained to settle at 1: both inputs must
        // settle at 1.
        let width = 3;
        let full = DenseSet::full(width);
        let out = DenseSet::from_signal(Signal::single_class(Level::One, Aw::FULL), width);
        let (ins, pout) = DenseSet::project_gate(|v| v.iter().all(|&b| b), &[&full, &full], &out);
        for w in ins[0].iter() {
            assert_eq!(w.settle(), Level::One);
        }
        for w in ins[1].iter() {
            assert_eq!(w.settle(), Level::One);
        }
        for w in pout.iter() {
            assert_eq!(w.settle(), Level::One);
        }
        assert!(!pout.is_empty());
    }

    #[test]
    fn project_not_gate_swaps_classes() {
        let width = 3;
        let input = DenseSet::from_signal(Signal::single_class(Level::Zero, Aw::FULL), width);
        let out_full = DenseSet::full(width);
        let (ins, pout) = DenseSet::project_gate(|v| !v[0], &[&input], &out_full);
        assert_eq!(ins[0].len(), input.len());
        for w in pout.iter() {
            assert_eq!(w.settle(), Level::One);
        }
    }

    #[test]
    fn project_empty_output_empties_everything() {
        let width = 3;
        let full = DenseSet::full(width);
        let empty = DenseSet::empty(width);
        let (ins, pout) = DenseSet::project_gate(|v| v.iter().all(|&b| b), &[&full, &full], &empty);
        assert!(ins[0].is_empty() && ins[1].is_empty() && pout.is_empty());
    }

    #[test]
    fn display_waveform() {
        let w = DenseWaveform::new(0b101, 3);
        assert_eq!(w.to_string(), "101");
    }
}
