//! Discrete time axis with `−∞` / `+∞` sentinels.
//!
//! The waveform-narrowing framework reasons about *last-transition times* of
//! binary waveforms, which live on a discrete integer time axis extended with
//! two infinities: `−∞` (a waveform that never differs from its settling
//! value, i.e. a constant) and `+∞` (no upper bound yet established).
//! [`Time`] is a thin wrapper over `i64` whose arithmetic saturates at the
//! sentinels, so `−∞ + d = −∞` and `+∞ + d = +∞` for any finite delay `d`.

use std::fmt;
use std::ops::{Add, Neg, Sub};

/// A point on the extended discrete time axis.
///
/// `Time` is ordered, `−∞ < t < +∞` for every finite `t`, and addition /
/// subtraction of finite offsets saturates at the infinities (the infinities
/// are *absorbing*: shifting a constant waveform still yields a constant
/// waveform).
///
/// # Examples
///
/// ```
/// use ltt_waveform::Time;
///
/// let t = Time::new(50);
/// assert_eq!(t + 10, Time::new(60));
/// assert_eq!(Time::NEG_INF + 10, Time::NEG_INF);
/// assert_eq!(Time::POS_INF - 10, Time::POS_INF);
/// assert!(Time::NEG_INF < t && t < Time::POS_INF);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Time(i64);

impl Time {
    /// The `−∞` sentinel: earlier than every finite time.
    pub const NEG_INF: Time = Time(i64::MIN);
    /// The `+∞` sentinel: later than every finite time.
    pub const POS_INF: Time = Time(i64::MAX);
    /// Time zero, when the input vector is applied in floating mode.
    pub const ZERO: Time = Time(0);

    /// Creates a finite time point.
    ///
    /// # Panics
    ///
    /// Panics if `t` collides with one of the infinity sentinels
    /// (`i64::MIN` / `i64::MAX`), which are reserved.
    ///
    /// # Examples
    ///
    /// ```
    /// use ltt_waveform::Time;
    /// assert!(Time::new(42).is_finite());
    /// ```
    pub fn new(t: i64) -> Self {
        assert!(
            t != i64::MIN && t != i64::MAX,
            "finite Time must not equal the infinity sentinels"
        );
        Time(t)
    }

    /// Returns the underlying value for a finite time, or `None` at ±∞.
    ///
    /// # Examples
    ///
    /// ```
    /// use ltt_waveform::Time;
    /// assert_eq!(Time::new(7).finite(), Some(7));
    /// assert_eq!(Time::POS_INF.finite(), None);
    /// ```
    pub fn finite(self) -> Option<i64> {
        if self.is_finite() {
            Some(self.0)
        } else {
            None
        }
    }

    /// Whether this is a finite time point (neither `−∞` nor `+∞`).
    pub fn is_finite(self) -> bool {
        self != Time::NEG_INF && self != Time::POS_INF
    }

    /// The later of two time points.
    ///
    /// # Examples
    ///
    /// ```
    /// use ltt_waveform::Time;
    /// assert_eq!(Time::new(3).max(Time::new(5)), Time::new(5));
    /// ```
    pub fn max(self, other: Time) -> Time {
        Ord::max(self, other)
    }

    /// The earlier of two time points.
    pub fn min(self, other: Time) -> Time {
        Ord::min(self, other)
    }

    /// Saturating addition of a (possibly negative) finite offset.
    ///
    /// The infinities absorb: `±∞ + d = ±∞`.
    pub fn offset(self, d: i64) -> Time {
        if !self.is_finite() {
            return self;
        }
        let v = self.0.saturating_add(d);
        // Saturation must not accidentally produce a sentinel meaning
        // "unbounded": clamp just inside.
        if v == i64::MAX {
            Time(i64::MAX - 1)
        } else if v == i64::MIN {
            Time(i64::MIN + 1)
        } else {
            Time(v)
        }
    }
}

impl Add<i64> for Time {
    type Output = Time;
    fn add(self, d: i64) -> Time {
        self.offset(d)
    }
}

impl Sub<i64> for Time {
    type Output = Time;
    fn sub(self, d: i64) -> Time {
        self.offset(-d)
    }
}

impl Neg for Time {
    type Output = Time;
    fn neg(self) -> Time {
        match self {
            Time::NEG_INF => Time::POS_INF,
            Time::POS_INF => Time::NEG_INF,
            Time(v) => Time(-v),
        }
    }
}

impl From<i64> for Time {
    fn from(t: i64) -> Self {
        Time::new(t)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Time::NEG_INF => write!(f, "-inf"),
            Time::POS_INF => write!(f, "+inf"),
            Time(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_places_sentinels_at_extremes() {
        assert!(Time::NEG_INF < Time::new(-1_000_000));
        assert!(Time::new(1_000_000) < Time::POS_INF);
        assert!(Time::NEG_INF < Time::POS_INF);
    }

    #[test]
    fn finite_arithmetic() {
        assert_eq!(Time::new(10) + 5, Time::new(15));
        assert_eq!(Time::new(10) - 25, Time::new(-15));
    }

    #[test]
    fn infinities_absorb_offsets() {
        assert_eq!(Time::NEG_INF + 1_000, Time::NEG_INF);
        assert_eq!(Time::NEG_INF - 1_000, Time::NEG_INF);
        assert_eq!(Time::POS_INF + 1_000, Time::POS_INF);
        assert_eq!(Time::POS_INF - 1_000, Time::POS_INF);
    }

    #[test]
    fn saturation_stays_finite() {
        let near_max = Time::new(i64::MAX - 2);
        let bumped = near_max + 100;
        assert!(bumped.is_finite());
        assert!(bumped > near_max);
        let near_min = Time::new(i64::MIN + 2);
        let dropped = near_min - 100;
        assert!(dropped.is_finite());
        assert!(dropped < near_min);
    }

    #[test]
    fn negation_swaps_sentinels() {
        assert_eq!(-Time::NEG_INF, Time::POS_INF);
        assert_eq!(-Time::POS_INF, Time::NEG_INF);
        assert_eq!(-Time::new(4), Time::new(-4));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Time::new(12).to_string(), "12");
        assert_eq!(Time::NEG_INF.to_string(), "-inf");
        assert_eq!(Time::POS_INF.to_string(), "+inf");
    }

    #[test]
    #[should_panic]
    fn new_rejects_sentinel() {
        let _ = Time::new(i64::MAX);
    }

    #[test]
    fn finite_accessor() {
        assert_eq!(Time::new(-3).finite(), Some(-3));
        assert_eq!(Time::NEG_INF.finite(), None);
    }
}
