//! Abstract waveforms: last-transition intervals (Definition 1 of the paper).
//!
//! An *abstract waveform* `w = v|_lmin^max` denotes the set of binary
//! waveforms that settle to the value `v` after time `max` and whose last
//! transition happens at or after `lmin`. Formally, with `LD(f)` the last
//! time at which `f` differs from its settling value (`−∞` for a constant
//! waveform):
//!
//! ```text
//! v|_lmin^max = { f ∈ BW : f settles to v  ∧  LD(f) ∈ [lmin, max] }
//! ```
//!
//! The settling value `v` (the waveform's *class*) is not stored here — an
//! [`Aw`] is the `[lmin, max]` interval component and the class is carried
//! positionally by [`Signal`](crate::Signal). All the relations and
//! operations of §3.1.1 of the paper (equality, narrowness, inclusion,
//! intersection, union, and the exactness criterion of Lemma 1) are
//! implemented on [`Aw`].

use crate::Time;
use std::fmt;

/// The last-transition interval `[lmin, max]` of an abstract waveform.
///
/// `Aw` is a closed interval over [`Time`]; the empty interval (`lmin > max`)
/// denotes the empty waveform set `φ` and is kept in a single canonical
/// representation so that `==` behaves as set equality.
///
/// # Examples
///
/// ```
/// use ltt_waveform::{Aw, Time};
///
/// // Waveforms settling (to some class) no later than t=50, with the last
/// // transition at or after t=41:
/// let w = Aw::new(Time::new(41), Time::new(50));
/// assert!(!w.is_empty());
/// assert_eq!(w.lmin(), Time::new(41));
/// assert_eq!(w.max(), Time::new(50));
///
/// // Intersection is exact interval intersection:
/// let narrower = w.intersect(Aw::before(Time::new(45)));
/// assert_eq!(narrower, Aw::new(Time::new(41), Time::new(45)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Aw {
    lmin: Time,
    max: Time,
}

impl Aw {
    /// The empty abstract waveform `φ` (contains no binary waveform).
    pub const EMPTY: Aw = Aw {
        lmin: Time::POS_INF,
        max: Time::NEG_INF,
    };

    /// The full abstract waveform `v|_{−∞}^{+∞}` (contains every binary
    /// waveform of its class, including constants).
    pub const FULL: Aw = Aw {
        lmin: Time::NEG_INF,
        max: Time::POS_INF,
    };

    /// Creates the interval `[lmin, max]`; an inverted interval collapses to
    /// the canonical [`Aw::EMPTY`].
    ///
    /// # Examples
    ///
    /// ```
    /// use ltt_waveform::{Aw, Time};
    /// assert!(Aw::new(Time::new(5), Time::new(3)).is_empty());
    /// ```
    pub fn new(lmin: Time, max: Time) -> Self {
        if lmin > max {
            Aw::EMPTY
        } else {
            Aw { lmin, max }
        }
    }

    /// Waveforms stable at or before `max`: the interval `[−∞, max]`.
    ///
    /// This is the shape produced by forward propagation ("no transition is
    /// possible on this net after `max`").
    pub fn before(max: Time) -> Self {
        Aw::new(Time::NEG_INF, max)
    }

    /// Waveforms whose last transition is at or after `lmin`: `[lmin, +∞]`.
    ///
    /// This is the shape of a timing-check constraint ("the output still
    /// transitions at or after `δ`").
    pub fn after(lmin: Time) -> Self {
        Aw::new(lmin, Time::POS_INF)
    }

    /// The degenerate interval `[t, t]` (last transition exactly at `t`).
    pub fn at(t: Time) -> Self {
        Aw::new(t, t)
    }

    /// Lower bound of the last-transition interval.
    ///
    /// # Panics
    ///
    /// Does not panic; for [`Aw::EMPTY`] this returns `+∞` (the canonical
    /// empty representation).
    pub fn lmin(self) -> Time {
        self.lmin
    }

    /// Upper bound of the last-transition interval (the settling deadline).
    pub fn max(self) -> Time {
        self.max
    }

    /// Whether this abstract waveform is the empty set `φ`.
    pub fn is_empty(self) -> bool {
        self.lmin > self.max
    }

    /// Whether `t` lies within the last-transition interval.
    pub fn contains_time(self, t: Time) -> bool {
        self.lmin <= t && t <= self.max
    }

    /// Set intersection (exact on abstract waveforms of the same class).
    ///
    /// # Examples
    ///
    /// ```
    /// use ltt_waveform::{Aw, Time};
    /// let a = Aw::new(Time::new(0), Time::new(10));
    /// let b = Aw::new(Time::new(5), Time::new(20));
    /// assert_eq!(a.intersect(b), Aw::new(Time::new(5), Time::new(10)));
    /// ```
    pub fn intersect(self, other: Aw) -> Aw {
        if self.is_empty() || other.is_empty() {
            return Aw::EMPTY;
        }
        Aw::new(self.lmin.max(other.lmin), self.max.min(other.max))
    }

    /// Abstract-waveform union: the narrowest `Aw` containing both operands.
    ///
    /// Unlike intersection, union over-approximates set union when the two
    /// intervals are separated by a gap (see [`Aw::union_is_exact`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use ltt_waveform::{Aw, Time};
    /// let a = Aw::new(Time::new(0), Time::new(3));
    /// let b = Aw::new(Time::new(10), Time::new(12));
    /// let u = a.union(b);
    /// assert_eq!(u, Aw::new(Time::new(0), Time::new(12)));
    /// assert!(!Aw::union_is_exact(a, b)); // the gap (3, 10) was absorbed
    /// ```
    pub fn union(self, other: Aw) -> Aw {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        Aw::new(self.lmin.min(other.lmin), self.max.max(other.max))
    }

    /// Lemma 1: the union of two non-empty abstract waveforms equals the
    /// plain set union iff the intervals overlap or are adjacent
    /// (`w2.max + 1 ≥ w1.lmin ∧ w1.max + 1 ≥ w2.lmin`).
    pub fn union_is_exact(w1: Aw, w2: Aw) -> bool {
        if w1.is_empty() || w2.is_empty() {
            return true;
        }
        w2.max + 1 >= w1.lmin && w1.max + 1 >= w2.lmin
    }

    /// The *narrower-than* relation `w1 < w2` of the paper: strictly fewer
    /// binary waveforms through a strictly tighter interval.
    ///
    /// `w1 < w2` iff `(w1.max ≤ w2.max ∧ w1.lmin > w2.lmin) ∨
    /// (w1.max < w2.max ∧ w1.lmin ≥ w2.lmin)`; additionally the empty
    /// waveform is narrower than every non-empty one.
    pub fn is_narrower_than(self, other: Aw) -> bool {
        if self.is_empty() {
            return !other.is_empty();
        }
        if other.is_empty() {
            return false;
        }
        (self.max <= other.max && self.lmin > other.lmin)
            || (self.max < other.max && self.lmin >= other.lmin)
    }

    /// Non-strict narrowness `w1 ≤ w2`, which is also abstract-waveform
    /// inclusion (`w1 ⊆ w2`).
    pub fn is_subset_of(self, other: Aw) -> bool {
        self == other || self.is_narrower_than(other)
    }

    /// Shifts the whole interval by a finite delay (`±∞` endpoints absorb).
    ///
    /// Shifting models a gate delay: if the inputs' last transitions lie in
    /// `[lmin, max]`, the output's lie in `[lmin + d, max + d]`.
    pub fn shift(self, d: i64) -> Aw {
        if self.is_empty() {
            return Aw::EMPTY;
        }
        Aw::new(self.lmin + d, self.max + d)
    }

    /// Raises the lower bound to at least `lmin` (removes waveforms that are
    /// stable strictly before `lmin` — the Corollary 1 dominator narrowing).
    pub fn require_transition_at_or_after(self, lmin: Time) -> Aw {
        self.intersect(Aw::after(lmin))
    }

    /// Lowers the upper bound to at most `max` (removes waveforms that still
    /// transition after `max` — forward settling propagation).
    pub fn require_stable_after(self, max: Time) -> Aw {
        self.intersect(Aw::before(max))
    }
}

impl Default for Aw {
    /// The default abstract waveform is [`Aw::FULL`] (no information yet).
    fn default() -> Self {
        Aw::FULL
    }
}

impl fmt::Debug for Aw {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Aw {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "phi")
        } else {
            write!(f, "[{}, {}]", self.lmin, self.max)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aw(l: i64, m: i64) -> Aw {
        Aw::new(Time::new(l), Time::new(m))
    }

    #[test]
    fn empty_is_canonical() {
        assert_eq!(aw(5, 3), Aw::EMPTY);
        assert_eq!(aw(100, -100), Aw::EMPTY);
        assert!(Aw::EMPTY.is_empty());
        assert!(!Aw::FULL.is_empty());
    }

    #[test]
    fn intersection_matches_interval_semantics() {
        assert_eq!(aw(0, 10).intersect(aw(5, 20)), aw(5, 10));
        assert_eq!(aw(0, 4).intersect(aw(5, 20)), Aw::EMPTY);
        assert_eq!(Aw::FULL.intersect(aw(-3, 3)), aw(-3, 3));
        assert_eq!(Aw::EMPTY.intersect(aw(0, 1)), Aw::EMPTY);
    }

    #[test]
    fn union_hull_and_identity() {
        assert_eq!(aw(0, 3).union(aw(10, 12)), aw(0, 12));
        assert_eq!(Aw::EMPTY.union(aw(1, 2)), aw(1, 2));
        assert_eq!(aw(1, 2).union(Aw::EMPTY), aw(1, 2));
    }

    #[test]
    fn lemma1_exactness_criterion() {
        // Adjacent intervals: exact.
        assert!(Aw::union_is_exact(aw(0, 4), aw(5, 9)));
        // Overlapping: exact.
        assert!(Aw::union_is_exact(aw(0, 6), aw(5, 9)));
        // Separated by a gap: inexact.
        assert!(!Aw::union_is_exact(aw(0, 3), aw(5, 9)));
        // Empty operand: trivially exact.
        assert!(Aw::union_is_exact(Aw::EMPTY, aw(5, 9)));
    }

    #[test]
    fn narrowness_relation() {
        assert!(aw(5, 10).is_narrower_than(aw(0, 10))); // lmin strictly up
        assert!(aw(0, 9).is_narrower_than(aw(0, 10))); // max strictly down
        assert!(aw(5, 9).is_narrower_than(aw(0, 10)));
        assert!(!aw(0, 10).is_narrower_than(aw(0, 10))); // strict
        assert!(!aw(0, 11).is_narrower_than(aw(0, 10)));
        assert!(Aw::EMPTY.is_narrower_than(aw(0, 10)));
        assert!(!aw(0, 10).is_narrower_than(Aw::EMPTY));
    }

    #[test]
    fn subset_is_reflexive_nonstrict_narrowness() {
        assert!(aw(0, 10).is_subset_of(aw(0, 10)));
        assert!(aw(2, 8).is_subset_of(aw(0, 10)));
        assert!(!aw(0, 10).is_subset_of(aw(2, 8)));
        assert!(Aw::EMPTY.is_subset_of(Aw::EMPTY));
    }

    #[test]
    fn shift_moves_finite_bounds_only() {
        assert_eq!(aw(1, 5).shift(10), aw(11, 15));
        assert_eq!(Aw::before(Time::new(5)).shift(10).lmin(), Time::NEG_INF);
        assert_eq!(Aw::EMPTY.shift(10), Aw::EMPTY);
    }

    #[test]
    fn narrowing_helpers() {
        let w = Aw::FULL;
        assert_eq!(
            w.require_transition_at_or_after(Time::new(61)),
            Aw::after(Time::new(61))
        );
        assert_eq!(
            w.require_stable_after(Time::new(10)),
            Aw::before(Time::new(10))
        );
        // Conflicting requirements empty the waveform.
        assert!(Aw::before(Time::new(10))
            .require_transition_at_or_after(Time::new(61))
            .is_empty());
    }

    #[test]
    fn display_forms() {
        assert_eq!(aw(1, 2).to_string(), "[1, 2]");
        assert_eq!(Aw::EMPTY.to_string(), "phi");
        assert_eq!(Aw::FULL.to_string(), "[-inf, +inf]");
    }
}
