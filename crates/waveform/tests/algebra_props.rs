//! Property-based tests for the abstract-waveform algebra.
//!
//! The key soundness contract: `Aw`/`Signal` operations must agree with (or
//! over-approximate, in the case of union) exact set semantics, which the
//! dense finite-window oracle computes by enumeration.

use ltt_waveform::dense::DenseSet;
use ltt_waveform::{Aw, Level, Signal, Time};
use proptest::prelude::*;

const W: u32 = 5;

/// An arbitrary `Aw` whose finite bounds fit in the dense window `[0, W)`.
fn arb_aw() -> impl Strategy<Value = Aw> {
    let bound = prop_oneof![
        Just(Time::NEG_INF),
        (0i64..(W as i64 - 1)).prop_map(Time::new),
        Just(Time::POS_INF),
    ];
    (bound.clone(), bound).prop_map(|(a, b)| Aw::new(a, b))
}

fn arb_signal() -> impl Strategy<Value = Signal> {
    (arb_aw(), arb_aw()).prop_map(|(z, o)| Signal::new(z, o))
}

fn dense(aw: Aw, level: Level) -> DenseSet {
    DenseSet::from_aw(aw, level, W)
}

proptest! {
    #[test]
    fn intersection_is_exact_set_intersection(a in arb_aw(), b in arb_aw()) {
        for level in Level::BOTH {
            let mut exact = dense(a, level);
            exact.intersect_with(&dense(b, level));
            prop_assert_eq!(dense(a.intersect(b), level), exact);
        }
    }

    #[test]
    fn union_contains_exact_set_union(a in arb_aw(), b in arb_aw()) {
        for level in Level::BOTH {
            let mut exact = dense(a, level);
            exact.union_with(&dense(b, level));
            let abstracted = dense(a.union(b), level);
            prop_assert!(exact.is_subset_of(&abstracted));
            // Lemma 1: the union is exact iff the criterion holds. The
            // criterion can also hold vacuously when intervals have no
            // representable witnesses, so only check the forward direction.
            if Aw::union_is_exact(a, b) {
                prop_assert_eq!(abstracted, exact);
            }
        }
    }

    #[test]
    fn union_is_minimal_hull(a in arb_aw(), b in arb_aw()) {
        // No Aw narrower than the union contains both operands.
        let u = a.union(b);
        prop_assert!(a.is_subset_of(u) && b.is_subset_of(u));
        if !u.is_empty() {
            // Shrinking either bound must drop an operand member (when the
            // bound is finite and came from an operand).
            let l = u.lmin();
            let m = u.max();
            prop_assert!(l == a.lmin().min(b.lmin()));
            prop_assert!(m == a.max().max(b.max()));
        }
    }

    #[test]
    fn narrowness_matches_strict_inclusion_on_dense(a in arb_aw(), b in arb_aw()) {
        // On representable sets, `is_subset_of` implies dense inclusion.
        for level in Level::BOTH {
            if a.is_subset_of(b) {
                prop_assert!(dense(a, level).is_subset_of(&dense(b, level)));
            }
        }
    }

    #[test]
    fn narrowness_is_a_strict_partial_order(a in arb_aw(), b in arb_aw(), c in arb_aw()) {
        prop_assert!(!a.is_narrower_than(a));
        if a.is_narrower_than(b) {
            prop_assert!(!b.is_narrower_than(a));
        }
        if a.is_narrower_than(b) && b.is_narrower_than(c) {
            prop_assert!(a.is_narrower_than(c));
        }
    }

    #[test]
    fn intersection_is_commutative_associative_idempotent(
        a in arb_aw(), b in arb_aw(), c in arb_aw()
    ) {
        prop_assert_eq!(a.intersect(b), b.intersect(a));
        prop_assert_eq!(a.intersect(b).intersect(c), a.intersect(b.intersect(c)));
        prop_assert_eq!(a.intersect(a), a);
    }

    #[test]
    fn union_is_commutative_associative_idempotent(
        a in arb_aw(), b in arb_aw(), c in arb_aw()
    ) {
        prop_assert_eq!(a.union(b), b.union(a));
        prop_assert_eq!(a.union(b).union(c), a.union(b.union(c)));
        prop_assert_eq!(a.union(a), a);
    }

    #[test]
    fn absorption_laws(a in arb_aw(), b in arb_aw()) {
        prop_assert_eq!(a.union(a.intersect(b)), a);
        prop_assert_eq!(a.intersect(a.union(b)), a);
    }

    #[test]
    fn shift_roundtrips(a in arb_aw(), d in 0i64..100) {
        prop_assert_eq!(a.shift(d).shift(-d), a);
        if !a.is_empty() && a.max().is_finite() {
            prop_assert_eq!(a.shift(d).max(), a.max() + d);
        }
    }

    #[test]
    fn signal_ops_are_componentwise(s1 in arb_signal(), s2 in arb_signal()) {
        let i = s1.intersect(s2);
        let u = s1.union(s2);
        for level in Level::BOTH {
            prop_assert_eq!(i[level], s1[level].intersect(s2[level]));
            prop_assert_eq!(u[level], s1[level].union(s2[level]));
        }
        prop_assert!(i.is_subset_of(s1) && i.is_subset_of(s2));
        prop_assert!(s1.is_subset_of(u) && s2.is_subset_of(u));
    }

    #[test]
    fn dense_narrowest_roundtrip(s in arb_signal()) {
        // Concretize then re-abstract: must be ≤ the original (the dense
        // window may not witness every bound) and concretize to the same set.
        let set = DenseSet::from_signal(s, W);
        let back = set.to_narrowest_signal();
        prop_assert!(back.is_subset_of(s));
        prop_assert_eq!(DenseSet::from_signal(back, W), set);
    }

    #[test]
    fn violation_and_stability_narrowing_agree_with_dense(
        s in arb_signal(), t in 0i64..(W as i64 - 1)
    ) {
        let t = Time::new(t);
        // require_transition_at_or_after = exact filter by LD ≥ t.
        let narrowed = DenseSet::from_signal(s.require_transition_at_or_after(t), W);
        let mut filtered = DenseSet::empty(W);
        for w in DenseSet::from_signal(s, W).iter() {
            if w.last_difference() >= t {
                filtered.insert(w);
            }
        }
        prop_assert_eq!(narrowed, filtered);

        // require_stable_after = exact filter by LD ≤ t.
        let narrowed = DenseSet::from_signal(s.require_stable_after(t), W);
        let mut filtered = DenseSet::empty(W);
        for w in DenseSet::from_signal(s, W).iter() {
            if w.last_difference() <= t {
                filtered.insert(w);
            }
        }
        prop_assert_eq!(narrowed, filtered);
    }
}
