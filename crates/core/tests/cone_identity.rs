//! Bit-identity and soundness of cone-scoped checking (DESIGN.md §14).
//!
//! The contract under test:
//!
//! * `ConeMode::Sliced` and `ConeMode::Masked` produce **bit-identical**
//!   reports — verdict, witness vector, per-stage verdicts, backtracks and
//!   every deterministic effort counter — because slicing renumbers the
//!   cone order-preservingly, making the two event schedules isomorphic.
//! * Either cone mode agrees with the legacy whole-circuit pipeline on
//!   verdicts, and any violation vector it reports is a real violation
//!   (witness vectors may differ: the legacy search also decides
//!   out-of-cone inputs, the cone modes fill them deterministically).
//! * Batch runs are identical at any job count, cone modes included.
//! * An ECO rebase ([`CheckSession::rebase`]) followed by re-verification
//!   equals a cold re-register + full re-check, bit for bit.

use ltt_core::{BatchRunner, CheckSession, ConeMode, Verdict, VerifyConfig, VerifyReport};
use ltt_netlist::generators::{
    carry_skip_adder, false_path_chain, figure1, random_circuit, RandomCircuitConfig,
};
use ltt_netlist::suite::c17;
use ltt_netlist::{Circuit, CircuitEdit, NetId};
use proptest::prelude::*;
use std::sync::Arc;

fn config_with(cone: ConeMode) -> VerifyConfig {
    VerifyConfig {
        cone,
        ..VerifyConfig::default()
    }
}

fn random_dag(seed: u64) -> Circuit {
    random_circuit(&RandomCircuitConfig {
        num_inputs: 10,
        num_gates: 60,
        num_outputs: 4,
        max_fanin: 3,
        depth_bias: 4,
        delay: 10,
        seed,
    })
}

/// The deltas probed per output: below, at, and above the exact delay
/// region (relative to the per-output topological arrival).
fn probe_deltas(top: i64) -> [i64; 4] {
    [top / 2, (3 * top) / 4, top, top + 1]
}

/// Full bit-identity: everything deterministic in the report must match.
/// (Wall-clock fields are the only exclusions.)
fn assert_bit_identical(a: &VerifyReport, b: &VerifyReport, what: &str) {
    assert_eq!(a.verdict, b.verdict, "{what}: verdict");
    assert_eq!(a.completeness, b.completeness, "{what}: completeness");
    assert_eq!(a.before_gitd, b.before_gitd, "{what}: before_gitd");
    assert_eq!(a.after_gitd, b.after_gitd, "{what}: after_gitd");
    assert_eq!(a.after_stems, b.after_stems, "{what}: after_stems");
    assert_eq!(a.backtracks, b.backtracks, "{what}: backtracks");
    assert_eq!(a.solver, b.solver, "{what}: solver stats");
    assert_eq!(a.stems, b.stems, "{what}: stem stats");
    assert_eq!(a.case, b.case, "{what}: case stats");
    assert_eq!(a.effort, b.effort, "{what}: stage effort");
    assert_eq!(a.output, b.output, "{what}: output");
    assert_eq!(a.delta, b.delta, "{what}: delta");
}

/// Runs every output × probe-δ through `Sliced`, `Masked` and legacy `Off`
/// sessions and checks the cross-mode contracts on one circuit.
fn check_all_modes(c: &Circuit) {
    let sliced = CheckSession::new(c, config_with(ConeMode::Sliced));
    let masked = CheckSession::new(c, config_with(ConeMode::Masked));
    let legacy = CheckSession::new(c, config_with(ConeMode::Off));
    for &s in c.outputs() {
        let top = legacy.prepared().arrival_times()[s.index()];
        for delta in probe_deltas(top) {
            let rs = sliced.verify(s, delta);
            let rm = masked.verify(s, delta);
            let rl = legacy.verify(s, delta);
            let what = format!("{} output {} δ={delta}", c.name(), c.net(s).name());
            assert_bit_identical(&rs, &rm, &what);
            assert_eq!(
                rs.verdict.is_violation(),
                rl.verdict.is_violation(),
                "{what}"
            );
            assert_eq!(
                rs.verdict.is_no_violation(),
                rl.verdict.is_no_violation(),
                "{what}"
            );
            for (mode, report) in [("sliced", &rs), ("masked", &rm), ("legacy", &rl)] {
                if let Verdict::Violation { vector } = &report.verdict {
                    assert_eq!(vector.len(), c.inputs().len(), "{what} [{mode}]");
                    assert!(
                        ltt_sta::vector_violates(c, vector, s, delta),
                        "{what} [{mode}]: reported vector does not violate"
                    );
                }
            }
        }
    }
}

#[test]
fn named_circuits_cone_modes_agree() {
    for c in [
        figure1(10),
        false_path_chain(4, 3, 10),
        carry_skip_adder(6, 2, 10),
        c17(10),
    ] {
        check_all_modes(&c);
    }
}

#[test]
fn exact_delay_agrees_through_cones() {
    for c in [figure1(10), carry_skip_adder(6, 2, 10), c17(10)] {
        let auto = CheckSession::new(&c, config_with(ConeMode::Auto));
        let legacy = CheckSession::new(&c, config_with(ConeMode::Off));
        for &s in c.outputs() {
            let a = auto.exact_delay(s);
            let l = legacy.exact_delay(s);
            assert_eq!(a.delay, l.delay, "{} output {}", c.name(), c.net(s).name());
            assert_eq!(a.proven_exact, l.proven_exact);
            assert_eq!(a.upper_bound, l.upper_bound);
        }
    }
}

#[test]
fn batch_reports_identical_at_any_job_count() {
    let c = carry_skip_adder(6, 2, 10);
    let session = CheckSession::new(&c, config_with(ConeMode::Sliced));
    let checks: Vec<(NetId, i64)> = c
        .outputs()
        .iter()
        .flat_map(|&s| {
            let top = session.prepared().arrival_times()[s.index()];
            probe_deltas(top).into_iter().map(move |d| (s, d))
        })
        .collect();
    let serial = BatchRunner::new(1).run(&session, &checks);
    let parallel = BatchRunner::new(4).run(&session, &checks);
    assert!(serial.errors.is_empty() && parallel.errors.is_empty());
    assert_eq!(serial.reports.len(), parallel.reports.len());
    for (a, b) in serial.reports.iter().zip(&parallel.reports) {
        assert_bit_identical(a, b, "jobs 1 vs jobs 4");
    }
}

/// One delay edit on a mid-circuit gate, exercised through rebase.
fn bump_one_delay(c: &Circuit) -> (Arc<Circuit>, Vec<NetId>, bool) {
    let gid = ltt_netlist::GateId::from_index(c.num_gates() / 2);
    let new_delay = ltt_netlist::DelayInterval::fixed(35);
    let outcome = c
        .apply_edit(&[CircuitEdit::SetDelay {
            gate: gid,
            delay: new_delay,
        }])
        .expect("delay edit is valid");
    (Arc::new(outcome.circuit), outcome.dirty, outcome.structural)
}

#[test]
fn rebase_matches_cold_session() {
    for (i, c) in [
        figure1(10),
        carry_skip_adder(6, 2, 10),
        random_dag(7),
        random_dag(99),
    ]
    .into_iter()
    .enumerate()
    {
        let old = CheckSession::new(&c, config_with(ConeMode::Auto));
        // Warm the old session so the rebase has analyses to transplant.
        for &s in c.outputs() {
            let top = old.prepared().arrival_times()[s.index()];
            let _ = old.verify(s, top);
        }
        let (edited, dirty, structural) = bump_one_delay(&c);
        assert!(!structural);
        let rebased = old.rebase(edited.clone(), &dirty, structural);
        let cold = CheckSession::new_shared(edited, config_with(ConeMode::Auto));
        for &s in c.outputs() {
            let top = cold.prepared().arrival_times()[s.index()];
            for delta in probe_deltas(top) {
                let a = rebased.verify(s, delta);
                let b = cold.verify(s, delta);
                assert_bit_identical(&a, &b, &format!("case {i} δ={delta}"));
            }
        }
    }
}

#[test]
fn structural_rebase_matches_cold_session() {
    // Rewire one 2-input gate's inputs swapped with another input net —
    // connectivity changes, so nothing transplants; results must still
    // match a cold session exactly.
    let c = random_dag(3);
    let gid = c
        .gate_ids()
        .find(|&g| c.gate(g).inputs().len() == 2)
        .expect("random DAG has a 2-input gate");
    let ins = c.gate(gid).inputs().to_vec();
    let outcome = c
        .apply_edit(&[CircuitEdit::Rewire {
            gate: gid,
            inputs: vec![ins[1], ins[0]],
        }])
        .expect("swap rewire is valid");
    assert!(outcome.structural);
    let old = CheckSession::new(&c, config_with(ConeMode::Auto));
    old.warm_up();
    let edited = Arc::new(outcome.circuit);
    let rebased = old.rebase(edited.clone(), &outcome.dirty, outcome.structural);
    let cold = CheckSession::new_shared(edited, config_with(ConeMode::Auto));
    for &s in c.outputs() {
        let top = cold.prepared().arrival_times()[s.index()];
        for delta in probe_deltas(top) {
            let a = rebased.verify(s, delta);
            let b = cold.verify(s, delta);
            assert_bit_identical(&a, &b, &format!("structural δ={delta}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_dags_sliced_masked_bit_identical(seed in 0u64..2000) {
        check_all_modes(&random_dag(seed));
    }

    #[test]
    fn random_dag_rebase_reverify_matches_cold(seed in 0u64..2000) {
        let c = random_dag(seed);
        let old = CheckSession::new(&c, config_with(ConeMode::Auto));
        for &s in c.outputs() {
            let top = old.prepared().arrival_times()[s.index()];
            let _ = old.verify(s, top);
        }
        let (edited, dirty, structural) = bump_one_delay(&c);
        let rebased = old.rebase(edited.clone(), &dirty, structural);
        let cold = CheckSession::new_shared(edited, config_with(ConeMode::Auto));
        for &s in c.outputs() {
            let top = cold.prepared().arrival_times()[s.index()];
            for delta in probe_deltas(top) {
                let a = rebased.verify(s, delta);
                let b = cold.verify(s, delta);
                assert_bit_identical(&a, &b, &format!("seed {seed} δ={delta}"));
            }
        }
    }
}
