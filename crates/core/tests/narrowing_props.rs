//! System-level soundness properties of the whole pipeline, on random
//! circuits with random δ and every stage configuration:
//!
//! * a `NoViolation` verdict is never wrong (the oracle's exact delay is
//!   strictly below δ);
//! * a `Violation` verdict always carries a vector the exact simulator
//!   confirms;
//! * the fixpoint domains always contain the trajectory of every concrete
//!   floating-mode simulation (settle bounds are respected).

use ltt_core::{verify, FixpointResult, LearningMode, Narrower, Verdict, VerifyConfig};
use ltt_netlist::generators::{random_circuit, RandomCircuitConfig};
use ltt_sta::{exhaustive_floating_delay, floating_settle, vector_violates};
use ltt_waveform::{Level, Signal, Time};
use proptest::prelude::*;

fn small_random(seed: u64) -> ltt_netlist::Circuit {
    random_circuit(&RandomCircuitConfig {
        num_inputs: 7,
        num_gates: 30,
        num_outputs: 2,
        max_fanin: 3,
        depth_bias: 4,
        delay: 10,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn verdicts_are_sound_for_every_configuration(
        seed in 0u64..10_000,
        delta_offset in -3i64..4,
        dominators in any::<bool>(),
        stems in any::<bool>(),
        learning in any::<bool>(),
    ) {
        let c = small_random(seed);
        let s = c.outputs()[0];
        let oracle = exhaustive_floating_delay(&c, s).expect("7 inputs");
        let delta = oracle.delay + delta_offset * 10;
        let config = VerifyConfig {
            dominators,
            stem_correlation: stems,
            learning: if learning { LearningMode::All } else { LearningMode::Off },
            max_backtracks: 10_000,
            ..Default::default()
        };
        let report = verify(&c, s, delta, &config);
        match &report.verdict {
            Verdict::NoViolation { .. } => {
                prop_assert!(
                    oracle.delay < delta,
                    "claimed no violation at δ={delta} but oracle delay is {}",
                    oracle.delay
                );
            }
            Verdict::Violation { vector } => {
                prop_assert!(vector_violates(&c, vector, s, delta));
                prop_assert!(oracle.delay >= delta);
            }
            Verdict::Possible | Verdict::Abandoned => {
                // Inconclusive is always allowed (soundness, not
                // completeness, is the property under test); but with case
                // analysis enabled and a generous budget this should not
                // happen on 30-gate circuits.
                prop_assert!(false, "case analysis failed to decide a tiny circuit");
            }
        }
    }

    /// Completeness of the full pipeline on small circuits: the exact
    /// verdict boundary sits exactly at the oracle delay.
    #[test]
    fn verdict_boundary_matches_oracle(seed in 0u64..10_000) {
        let c = small_random(seed);
        let s = c.outputs()[0];
        let oracle = exhaustive_floating_delay(&c, s).expect("7 inputs");
        let config = VerifyConfig::default();
        let at = verify(&c, s, oracle.delay, &config);
        prop_assert!(
            oracle.delay == 0 || at.verdict.is_violation(),
            "must find a vector at the exact delay {}",
            oracle.delay
        );
        let above = verify(&c, s, oracle.delay + 1, &config);
        prop_assert!(above.verdict.is_no_violation());
    }

    /// Abstraction invariant: for any vector, the concrete floating-mode
    /// trajectory lies inside the fixpoint domains — each net's settled
    /// value class is non-empty and its settle bound is respected.
    #[test]
    fn fixpoint_domains_contain_all_trajectories(
        seed in 0u64..10_000,
        vector_bits in 0u64..128,
    ) {
        let c = small_random(seed);
        let mut nw = Narrower::new(&c);
        for &i in c.inputs() {
            nw.narrow_net(i, Signal::floating_input());
        }
        prop_assert_eq!(nw.reach_fixpoint(), FixpointResult::Fixpoint);

        let vector: Vec<bool> = (0..c.inputs().len()).map(|i| (vector_bits >> i) & 1 == 1).collect();
        let trajectory = floating_settle(&c, &vector);
        for net in c.net_ids() {
            let info = trajectory[net.index()];
            let domain = nw.domain(net);
            let class = Level::from_bool(info.value);
            prop_assert!(
                !domain[class].is_empty(),
                "net {} settles to {} but that class is empty",
                c.net(net).name(),
                class
            );
            // The simulated stabilization time never exceeds the settle
            // bound of the settled class (the concrete waveform's last
            // difference is ≤ its stabilization time).
            prop_assert!(
                domain[class].max() >= Time::new(info.time) || domain[class].max() == Time::POS_INF
                    || Time::new(info.time) <= domain.latest_settle(),
                "net {}: class {} bound {} vs simulated settle {}",
                c.net(net).name(),
                class,
                domain[class].max(),
                info.time
            );
        }
    }

    /// The settle bound computed by forward narrowing is an upper bound on
    /// the stabilization time of every vector (the conservative direction).
    #[test]
    fn settle_bounds_dominate_simulation(seed in 0u64..10_000, vector_bits in 0u64..128) {
        let c = small_random(seed);
        let mut nw = Narrower::new(&c);
        for &i in c.inputs() {
            nw.narrow_net(i, Signal::floating_input());
        }
        nw.reach_fixpoint();
        let vector: Vec<bool> = (0..c.inputs().len()).map(|i| (vector_bits >> i) & 1 == 1).collect();
        let trajectory = floating_settle(&c, &vector);
        for net in c.net_ids() {
            let bound = nw.domain(net).latest_settle();
            let t = trajectory[net.index()].time;
            prop_assert!(
                bound >= Time::new(t),
                "net {}: fixpoint settle bound {} < simulated {}",
                c.net(net).name(),
                bound,
                t
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Theorem 1 / chaotic-iteration confluence: the greatest fixpoint is
    /// unique, so the order in which gate constraints are applied must not
    /// change the result. Compare the event-driven schedule against a
    /// brute-force round-robin over a seed-shuffled gate order.
    #[test]
    fn fixpoint_is_confluent(seed in 0u64..10_000, order_seed in 0u64..1000, delta in 1i64..120) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;

        let c = small_random(seed);
        let s = c.outputs()[0];

        // Reference: the event-driven scheduler.
        let mut reference = Narrower::new(&c);
        for &i in c.inputs() {
            reference.narrow_net(i, Signal::floating_input());
        }
        reference.narrow_net(s, Signal::violation(Time::new(delta)));
        let ref_result = reference.reach_fixpoint();

        // Candidate: shuffled round-robin application until quiescence.
        let mut candidate = Narrower::new(&c);
        for &i in c.inputs() {
            candidate.narrow_net(i, Signal::floating_input());
        }
        candidate.narrow_net(s, Signal::violation(Time::new(delta)));
        let mut order: Vec<_> = c.gate_ids().collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(order_seed);
        order.shuffle(&mut rng);
        loop {
            let mut changed = false;
            for &g in &order {
                changed |= candidate.apply_gate(g);
                if candidate.has_contradiction() {
                    break;
                }
            }
            if !changed || candidate.has_contradiction() {
                break;
            }
        }

        prop_assert_eq!(
            reference.has_contradiction(),
            candidate.has_contradiction(),
            "contradiction detection must agree (ref {:?})",
            ref_result
        );
        if !candidate.has_contradiction() {
            prop_assert_eq!(reference.domains(), candidate.domains());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The incremental δ-sweep is consistent with the full search: the
    /// largest δ the profile leaves `possible` is an upper bound on the
    /// exact delay (and at the exact delay itself it must stay possible).
    #[test]
    fn delay_profile_brackets_exact_delay(seed in 0u64..10_000) {
        use ltt_core::{delay_profile, exact_delay, VerifyConfig};
        let c = small_random(seed);
        let s = c.outputs()[0];
        let top = c.arrival_times()[s.index()];
        let deltas: Vec<i64> = (0..=top / 10 + 1).map(|k| k * 10).collect();
        let profile = delay_profile(&c, s, &deltas);
        let narrowing_bound = profile
            .iter()
            .filter(|p| p.possible)
            .map(|p| p.delta)
            .max()
            .unwrap_or(0);
        let search = exact_delay(&c, s, &VerifyConfig::default());
        prop_assert!(search.proven_exact);
        prop_assert!(
            narrowing_bound >= search.delay,
            "profile bound {narrowing_bound} below exact {}",
            search.delay
        );
        // At the exact delay the system must still be possible.
        if let Some(p) = profile.iter().find(|p| p.delta == search.delay) {
            prop_assert!(p.possible);
        }
    }

    /// Dynamic carriers are a refinement of static carriers: once the
    /// forward settle bounds are in (the plain fixpoint), every dynamic
    /// carrier is also a static carrier, and its dynamic distance never
    /// exceeds the static one.
    #[test]
    fn dynamic_carriers_refine_static(seed in 0u64..10_000, delta_off in 0i64..5) {
        use ltt_core::carriers::{dynamic_carriers, static_carriers};
        let c = small_random(seed);
        let s = c.outputs()[0];
        let delta = c.arrival_times()[s.index()] - delta_off * 10;
        let mut nw = Narrower::new(&c);
        for &i in c.inputs() {
            nw.narrow_net(i, Signal::floating_input());
        }
        nw.narrow_net(s, Signal::violation(Time::new(delta)));
        if nw.reach_fixpoint() == FixpointResult::Contradiction {
            return Ok(());
        }
        let dynamic = dynamic_carriers(&c, nw.domains(), s, delta);
        let static_ = static_carriers(&c, s, delta);
        for net in c.net_ids() {
            if let Some(dk) = dynamic[net.index()] {
                let sk = static_[net.index()];
                prop_assert!(
                    sk.is_some(),
                    "net {} dynamic but not static",
                    c.net(net).name()
                );
                prop_assert!(
                    dk <= sk.unwrap(),
                    "net {}: dynamic distance {dk} exceeds static {}",
                    c.net(net).name(),
                    sk.unwrap()
                );
            }
        }
    }
}
