//! Soundness of the gate constraint projections against the exact
//! dense-window oracle.
//!
//! For random domains, the interval rules must never remove a waveform
//! that participates in a consistent `(a₁, …, a_k, s)` tuple: the
//! concretization of every projection target must contain the exact
//! relational projection (§3.2). This is the safety net under all the
//! closed-form derivations in `ltt_core::projection`.

use ltt_core::project;
use ltt_netlist::GateKind;
use ltt_waveform::dense::DenseSet;
use ltt_waveform::{Aw, Signal, Time};
use proptest::prelude::*;

const W: u32 = 5;

fn arb_aw() -> impl Strategy<Value = Aw> {
    let bound = prop_oneof![
        Just(Time::NEG_INF),
        (0i64..(W as i64 - 1)).prop_map(Time::new),
        Just(Time::POS_INF),
    ];
    (bound.clone(), bound).prop_map(|(a, b)| Aw::new(a, b))
}

fn arb_signal() -> impl Strategy<Value = Signal> {
    (arb_aw(), arb_aw()).prop_map(|(z, o)| Signal::new(z, o))
}

fn arb_kind2() -> impl Strategy<Value = GateKind> {
    prop_oneof![
        Just(GateKind::And),
        Just(GateKind::Nand),
        Just(GateKind::Or),
        Just(GateKind::Nor),
        Just(GateKind::Xor),
        Just(GateKind::Xnor),
    ]
}

fn gate_fn(kind: GateKind) -> impl Fn(&[bool]) -> bool {
    move |vals| kind.eval(vals)
}

/// Checks soundness of `project` at delay 0 for the given terminals.
fn check_soundness(kind: GateKind, inputs: &[Signal], output: Signal) {
    let p = project(kind, 0, inputs, output);

    // Narrowing: targets are subsets of the current domains.
    assert!(p.output.is_subset_of(output), "{kind}: output widened");
    for (j, t) in p.inputs.iter().enumerate() {
        assert!(t.is_subset_of(inputs[j]), "{kind}: input {j} widened");
    }

    // Exact projections from the dense oracle.
    let dense_inputs: Vec<DenseSet> = inputs
        .iter()
        .map(|&s| DenseSet::from_signal(s, W))
        .collect();
    let dense_refs: Vec<&DenseSet> = dense_inputs.iter().collect();
    let dense_out = DenseSet::from_signal(output, W);
    let (exact_in, exact_out) = DenseSet::project_gate(gate_fn(kind), &dense_refs, &dense_out);

    // Soundness: every exact member survives the narrowing.
    let narrowed_out = DenseSet::from_signal(p.output, W);
    assert!(
        exact_out.is_subset_of(&narrowed_out),
        "{kind}: output projection dropped solutions\n  inputs: {inputs:?}\n  output: {output:?}\n  target: {:?}",
        p.output,
    );
    for (j, exact) in exact_in.iter().enumerate() {
        let narrowed = DenseSet::from_signal(p.inputs[j], W);
        assert!(
            exact.is_subset_of(&narrowed),
            "{kind}: input {j} projection dropped solutions\n  inputs: {inputs:?}\n  output: {output:?}\n  target: {:?}",
            p.inputs[j],
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn binary_gates_are_sound(
        kind in arb_kind2(),
        a in arb_signal(),
        b in arb_signal(),
        s in arb_signal(),
    ) {
        check_soundness(kind, &[a, b], s);
    }

    #[test]
    fn unary_gates_are_sound(
        kind in prop_oneof![Just(GateKind::Not), Just(GateKind::Buffer), Just(GateKind::Delay)],
        a in arb_signal(),
        s in arb_signal(),
    ) {
        check_soundness(kind, &[a], s);
    }

    #[test]
    fn mux_projection_is_sound(
        s_sel in arb_signal(),
        a in arb_signal(),
        b in arb_signal(),
        o in arb_signal(),
    ) {
        check_soundness(GateKind::Mux, &[s_sel, a, b], o);
    }

    #[test]
    fn ternary_gates_are_sound(
        kind in prop_oneof![
            Just(GateKind::And),
            Just(GateKind::Nor),
            Just(GateKind::Xor),
        ],
        a in arb_signal(),
        b in arb_signal(),
        c in arb_signal(),
        s in arb_signal(),
    ) {
        check_soundness(kind, &[a, b, c], s);
    }

    /// Delay handling is a pure time shift: projecting with delay `d`
    /// equals projecting at delay 0 against the output shifted by `−d`,
    /// then shifting the output target back by `+d`.
    #[test]
    fn delay_is_a_time_shift(
        kind in arb_kind2(),
        a in arb_signal(),
        b in arb_signal(),
        s in arb_signal(),
        d in 1i64..50,
    ) {
        let shifted_out = Signal::new(s[ltt_waveform::Level::Zero].shift(-d),
                                      s[ltt_waveform::Level::One].shift(-d));
        let p0 = project(kind, 0, &[a, b], shifted_out);
        let pd = project(kind, d, &[a, b], s);
        prop_assert_eq!(pd.inputs, p0.inputs);
        let reshifted = Signal::new(
            p0.output[ltt_waveform::Level::Zero].shift(d),
            p0.output[ltt_waveform::Level::One].shift(d),
        );
        prop_assert_eq!(pd.output, reshifted);
    }

    /// Idempotence at the fixpoint: applying the projection to its own
    /// result changes nothing further… within one extra round. (The rules
    /// are monotone narrowings, so a second application can only narrow;
    /// this asserts the common case that one round suffices per gate.)
    #[test]
    fn projection_is_monotone_under_iteration(
        kind in arb_kind2(),
        a in arb_signal(),
        b in arb_signal(),
        s in arb_signal(),
    ) {
        let p1 = project(kind, 0, &[a, b], s);
        let p2 = project(kind, 0, &p1.inputs, p1.output);
        prop_assert!(p2.output.is_subset_of(p1.output));
        for j in 0..2 {
            prop_assert!(p2.inputs[j].is_subset_of(p1.inputs[j]));
        }
    }
}
