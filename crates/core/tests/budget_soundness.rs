//! Soundness under resource exhaustion: a budget trip may cost
//! *completeness* (the check comes back `Abandoned` /
//! `BudgetExhausted`), but never *correctness*:
//!
//! * whatever the budget, a `NoViolation` or `Violation` verdict agrees
//!   with the exhaustive floating-mode oracle, and a non-`Exact`
//!   completeness marker only ever accompanies an `Abandoned` verdict;
//! * a budget-degraded delay search always reports a proven
//!   `[lower, upper]` interval containing the exact delay.

use ltt_core::{
    verify, Budget, CancelToken, CheckSession, Completeness, Stage, TripReason, Verdict,
    VerifyConfig,
};
use ltt_netlist::generators::{random_circuit, serial_false_path_gadgets, RandomCircuitConfig};
use ltt_sta::{exhaustive_floating_delay, vector_violates};
use proptest::prelude::*;
use std::time::{Duration, Instant};

fn small_random(seed: u64) -> ltt_netlist::Circuit {
    random_circuit(&RandomCircuitConfig {
        num_inputs: 7,
        num_gates: 30,
        num_outputs: 2,
        max_fanin: 3,
        depth_bias: 4,
        delay: 10,
        seed,
    })
}

/// One of the three cap kinds, tightened to `cap` where that applies.
/// `Duration::ZERO` makes the wall-clock case deterministic: the very
/// first clock read trips.
fn tight_budget(kind: u8, cap: u64) -> Budget {
    match kind % 3 {
        0 => Budget::unlimited().with_events(cap),
        1 => Budget::unlimited().with_backtracks(cap.min(3)),
        _ => Budget::unlimited().with_wall(Duration::ZERO),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn budget_exhaustion_never_contradicts_the_oracle(
        seed in 0u64..10_000,
        delta_offset in -3i64..4,
        kind in 0u8..3,
        cap in 1u64..200,
    ) {
        let c = small_random(seed);
        let s = c.outputs()[0];
        let oracle = exhaustive_floating_delay(&c, s).expect("7 inputs");
        let delta = oracle.delay + delta_offset * 10;
        let config = VerifyConfig {
            budget: tight_budget(kind, cap),
            max_backtracks: 10_000,
            ..Default::default()
        };
        let report = verify(&c, s, delta, &config);
        match &report.verdict {
            Verdict::NoViolation { .. } => {
                prop_assert!(
                    report.completeness.is_exact(),
                    "a definitive NoViolation must be marked Exact, got {:?}",
                    report.completeness
                );
                prop_assert!(
                    oracle.delay < delta,
                    "claimed no violation at δ={delta} under {:?} but oracle delay is {}",
                    config.budget, oracle.delay
                );
            }
            Verdict::Violation { vector } => {
                prop_assert!(
                    vector_violates(&c, vector, s, delta),
                    "claimed violating vector at δ={delta} fails certification"
                );
            }
            // No claim made: nothing to contradict.
            Verdict::Possible | Verdict::Abandoned => {}
        }
        if !report.completeness.is_exact() {
            prop_assert_eq!(&report.verdict, &Verdict::Abandoned);
        }
    }

    #[test]
    fn degraded_delay_interval_contains_the_exact_delay(
        seed in 0u64..10_000,
        kind in 0u8..3,
        cap in 1u64..50,
    ) {
        let c = small_random(seed);
        let s = c.outputs()[0];
        let oracle = exhaustive_floating_delay(&c, s).expect("7 inputs");
        let session = CheckSession::new(&c, VerifyConfig::default());
        let search = session.exact_delay_budgeted(s, &tight_budget(kind, cap));
        prop_assert!(
            search.delay <= oracle.delay,
            "lower bound {} exceeds exact delay {}",
            search.delay, oracle.delay
        );
        prop_assert!(
            search.upper_bound >= oracle.delay,
            "upper bound {} is below exact delay {}",
            search.upper_bound, oracle.delay
        );
        if search.proven_exact {
            prop_assert_eq!(search.delay, oracle.delay);
        }
    }
}

#[test]
fn cancelled_token_aborts_without_claiming() {
    let c = serial_false_path_gadgets(4, 10);
    let s = c.outputs()[0];
    let token = CancelToken::new();
    token.cancel();
    let config = VerifyConfig {
        budget: Budget::unlimited().with_cancel(token),
        ..Default::default()
    };
    let report = verify(&c, s, 241, &config);
    assert_eq!(report.verdict, Verdict::Abandoned);
    assert!(matches!(
        report.completeness,
        Completeness::BudgetExhausted {
            reason: TripReason::Cancelled,
            ..
        }
    ));
}

#[test]
fn event_cap_trips_in_the_named_stage() {
    let c = serial_false_path_gadgets(4, 10);
    let s = c.outputs()[0];
    let config = VerifyConfig {
        budget: Budget::unlimited().with_events(1),
        ..Default::default()
    };
    let report = verify(&c, s, 241, &config);
    assert_eq!(report.verdict, Verdict::Abandoned);
    assert_eq!(
        report.completeness,
        Completeness::BudgetExhausted {
            stage: Stage::Narrowing,
            reason: TripReason::Events,
        }
    );
}

#[test]
fn deadline_on_the_blowup_workload_stays_sound_and_prompt() {
    // The acceptance-criterion shape: a wall-budgeted delay search on the
    // path-blow-up instance terminates promptly and brackets the exact
    // delay (6·k·d = 480 by construction).
    let c = serial_false_path_gadgets(8, 10);
    let s = c.outputs()[0];
    let session = CheckSession::new(&c, VerifyConfig::default());
    let budget = Budget::unlimited().with_wall(Duration::from_millis(50));
    let t0 = Instant::now();
    let search = session.exact_delay_budgeted(s, &budget);
    let elapsed = t0.elapsed();
    assert!(search.delay <= 480, "lower bound {}", search.delay);
    assert!(
        search.upper_bound >= 480,
        "upper bound {}",
        search.upper_bound
    );
    if search.proven_exact {
        assert_eq!(search.delay, 480);
    }
    // ~2× the 50 ms deadline, with a wide margin for loaded CI machines.
    assert!(elapsed < Duration::from_secs(5), "took {elapsed:?}");
}
