//! Fault-injection tests (run with `--features failpoints`): the batch
//! runner's panic isolation and the wall-clock deadline path, exercised by
//! real injected faults rather than hand-mocked ones.
//!
//! The failpoint registry is process-global, so every test takes the
//! shared lock and disarms the registry when done.

#![cfg(feature = "failpoints")]

use ltt_core::failpoint::{clear_all, set, FailAction};
use ltt_core::{
    BatchOutcome, BatchRunner, CheckError, CheckSession, Verdict, VerifyConfig, VerifyReport,
};
use ltt_netlist::generators::{random_circuit, RandomCircuitConfig};
use ltt_netlist::NetId;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

fn registry_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    // A panicking test (expected here!) poisons the lock; the registry
    // itself is still consistent because tests disarm it on entry.
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn multi_output_circuit() -> ltt_netlist::Circuit {
    random_circuit(&RandomCircuitConfig {
        num_inputs: 8,
        num_gates: 40,
        num_outputs: 6,
        max_fanin: 3,
        depth_bias: 4,
        delay: 10,
        seed: 0xFA11,
    })
}

/// The decision content of a report — everything except wall-clock times,
/// which can never be identical across runs.
fn fingerprint(r: &VerifyReport) -> impl PartialEq + std::fmt::Debug {
    (
        r.output,
        r.delta,
        r.verdict.clone(),
        r.completeness,
        r.before_gitd,
        r.after_gitd,
        r.after_stems,
        r.backtracks,
        r.solver,
    )
}

#[test]
fn panicking_check_is_isolated_and_the_rest_is_bit_identical() {
    let _g = registry_lock();
    clear_all();
    let c = multi_output_circuit();
    let session = CheckSession::new(&c, VerifyConfig::default());
    let delta = 31;
    let checks: Vec<(NetId, i64)> = c.outputs().iter().map(|&o| (o, delta)).collect();
    let victim = c.outputs()[2];
    let victim_name = c.net(victim).name().to_string();

    // Baseline: the batch without the poisoned check, no failpoints armed.
    let without_victim: Vec<(NetId, i64)> = checks
        .iter()
        .copied()
        .filter(|&(o, _)| o != victim)
        .collect();
    let baseline = BatchRunner::serial().run_under(&session, &without_victim, &[]);
    assert!(baseline.errors.is_empty());

    set(
        "check::narrowing",
        Some(&victim_name),
        FailAction::Panic("injected fault".into()),
    );
    for jobs in [1, 2, 8] {
        let batch = BatchRunner::new(jobs).run_under(&session, &checks, &[]);
        // Exactly the victim's slot failed, with the injected message.
        assert_eq!(batch.errors.len(), 1, "jobs={jobs}");
        let err = &batch.errors[0];
        assert_eq!(err.output, victim);
        match &err.error {
            CheckError::Panicked { message } => {
                assert!(message.contains("injected fault"), "got: {message}")
            }
            other => panic!("expected a captured panic, got {other:?}"),
        }
        assert_eq!(batch.summary.failed, 1);
        // Every other check completed, bit-identical to the baseline.
        assert_eq!(batch.reports.len(), baseline.reports.len(), "jobs={jobs}");
        for (got, want) in batch.reports.iter().zip(&baseline.reports) {
            assert_eq!(fingerprint(got), fingerprint(want), "jobs={jobs}");
        }
    }
    clear_all();
}

#[test]
fn unfiltered_panic_failpoint_fails_every_slot_but_never_the_batch() {
    let _g = registry_lock();
    clear_all();
    let c = multi_output_circuit();
    let session = CheckSession::new(&c, VerifyConfig::default());
    let checks: Vec<(NetId, i64)> = c.outputs().iter().map(|&o| (o, 31)).collect();
    set(
        "check::case-analysis",
        None,
        FailAction::Panic("late fault".into()),
    );
    let batch = BatchRunner::new(4).run_under(&session, &checks, &[]);
    // Checks decided before case analysis still report; the rest are
    // captured panics — and the run itself returns normally either way.
    assert_eq!(
        batch.reports.len() + batch.errors.len(),
        checks.len(),
        "every slot is accounted for"
    );
    assert_eq!(batch.summary.failed, batch.errors.len() as u64);
    clear_all();
}

#[test]
fn stalled_stage_hits_the_deadline_and_degrades() {
    let _g = registry_lock();
    clear_all();
    let c = multi_output_circuit();
    let session = CheckSession::new(&c, VerifyConfig::default());
    let checks: Vec<(NetId, i64)> = c.outputs().iter().map(|&o| (o, 31)).collect();
    set(
        "check::narrowing",
        None,
        FailAction::Stall(Duration::from_millis(30)),
    );
    let runner = BatchRunner::serial().with_deadline(Duration::from_millis(10));
    let batch = runner.run_under(&session, &checks, &[]);
    clear_all();
    // The first check stalls past the whole-batch deadline, so no check
    // can claim a decision — every slot is a degraded Abandoned report
    // (never a panic), and the batch still terminates promptly.
    assert!(batch.errors.is_empty(), "stalls must not become errors");
    assert!(!batch.is_complete());
    assert_eq!(batch.outcome(), BatchOutcome::Undecided);
    for r in &batch.reports {
        assert_eq!(r.verdict, Verdict::Abandoned);
        assert!(!r.completeness.is_exact());
    }
    assert!(batch.wall < Duration::from_secs(5), "took {:?}", batch.wall);
}
