//! Model-based property tests for the struct-of-arrays [`SignalStore`]:
//! a deliberately naive per-net reference implementation (one `Signal`
//! slot per net, checkpoints as full-vector snapshots) is driven through
//! the same random interleavings of narrowings, forced replacements,
//! checkpoints and rollbacks, and the SoA store must stay bit-identical
//! to it after every single operation — domains, change reports, the
//! contradiction flag, and the derived fixed-class view.
//!
//! This pins the whole data-oriented rewrite (bounds plane + value-lattice
//! plane + epoch-stamped first-write-wins trail) to the semantics of the
//! obvious implementation.

use ltt_core::{Checkpoint, SignalStore};
use ltt_netlist::generators::{random_circuit, RandomCircuitConfig};
use ltt_netlist::NetId;
use ltt_waveform::{Aw, Signal, Time};
use proptest::prelude::*;

/// The reference model: per-net signals, snapshot checkpoints, no trail,
/// no incremental bookkeeping — every query recomputed from scratch.
struct RefStore {
    sig: Vec<Signal>,
    snapshots: Vec<Vec<Signal>>,
}

impl RefStore {
    fn new(nets: usize) -> RefStore {
        RefStore {
            sig: vec![Signal::FULL; nets],
            snapshots: Vec::new(),
        }
    }

    fn narrow_to(&mut self, n: usize, target: Signal) -> bool {
        let new = self.sig[n].intersect(target);
        let changed = new != self.sig[n];
        self.sig[n] = new;
        changed
    }

    fn replace(&mut self, n: usize, value: Signal) -> bool {
        let changed = value != self.sig[n];
        self.sig[n] = value;
        changed
    }

    fn checkpoint(&mut self) -> usize {
        self.snapshots.push(self.sig.clone());
        self.snapshots.len() - 1
    }

    fn rollback(&mut self, mark: usize) {
        self.sig = self.snapshots[mark].clone();
        self.snapshots.truncate(mark);
    }

    fn has_contradiction(&self) -> bool {
        self.sig.iter().any(|d| d.is_empty())
    }
}

fn arb_signal() -> impl Strategy<Value = Signal> {
    let bound = prop_oneof![
        Just(Time::NEG_INF),
        (0i64..50).prop_map(Time::new),
        Just(Time::POS_INF),
    ];
    let aw = (bound.clone(), bound).prop_map(|(a, b)| Aw::new(a, b));
    (aw.clone(), aw).prop_map(|(z, o)| Signal::new(z, o))
}

#[derive(Clone, Debug)]
enum Op {
    Narrow(usize, Signal),
    Replace(usize, Signal),
    Checkpoint,
    Rollback,
}

fn arb_ops(nets: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            5 => (0..nets, arb_signal()).prop_map(|(n, s)| Op::Narrow(n, s)),
            1 => (0..nets, arb_signal()).prop_map(|(n, s)| Op::Replace(n, s)),
            2 => Just(Op::Checkpoint),
            2 => Just(Op::Rollback),
        ],
        1..80,
    )
}

/// Every observable of the SoA store matches the model: domains
/// bit-identical, contradiction flag identical, and the fixed-class view
/// (which the store answers from its value-lattice plane) identical to
/// recomputing it from the model's signals.
fn assert_same(store: &SignalStore, model: &RefStore) -> Result<(), TestCaseError> {
    prop_assert_eq!(store.all(), &model.sig[..]);
    prop_assert_eq!(store.has_contradiction(), model.has_contradiction());
    for (i, &d) in model.sig.iter().enumerate() {
        let net = NetId::from_index(i);
        prop_assert_eq!(store.get(net), d);
        prop_assert_eq!(store.get(net).fixed_class(), d.fixed_class());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Lock-step equivalence of the SoA store and the naive model under
    /// random op interleavings, checked after every operation and through
    /// a final full unwind.
    #[test]
    fn soa_store_matches_reference_model(seed in 0u64..1000, ops in arb_ops(14)) {
        let c = random_circuit(&RandomCircuitConfig {
            num_inputs: 5,
            num_gates: 9,
            num_outputs: 1,
            max_fanin: 2,
            depth_bias: 2,
            delay: 10,
            seed,
        });
        let nets = c.num_nets();
        let mut store = SignalStore::new(&c);
        let mut model = RefStore::new(nets);
        let mut marks: Vec<(Checkpoint, usize)> = Vec::new();
        for op in ops {
            match op {
                Op::Narrow(n, target) => {
                    let n = n % nets;
                    let a = store.narrow_to(NetId::from_index(n), target);
                    let b = model.narrow_to(n, target);
                    prop_assert_eq!(a, b, "narrow change report diverged");
                }
                Op::Replace(n, value) => {
                    let n = n % nets;
                    let a = store.replace(NetId::from_index(n), value);
                    let b = model.replace(n, value);
                    prop_assert_eq!(a, b, "replace change report diverged");
                }
                Op::Checkpoint => {
                    marks.push((store.checkpoint(), model.checkpoint()));
                }
                Op::Rollback => {
                    if let Some((cp, m)) = marks.pop() {
                        store.rollback(cp);
                        model.rollback(m);
                    }
                }
            }
            assert_same(&store, &model)?;
        }
        while let Some((cp, m)) = marks.pop() {
            store.rollback(cp);
            model.rollback(m);
            assert_same(&store, &model)?;
        }
    }

    /// Containment invariant: narrowing only ever shrinks a domain — after
    /// any prefix of narrow-only ops inside a window, the current domain is
    /// a subset of every earlier value of that net, and rollback restores
    /// exactly the window-opening value (never something wider or narrower).
    #[test]
    fn narrowing_is_monotone_and_rollback_exact(ops in arb_ops(10)) {
        let c = random_circuit(&RandomCircuitConfig {
            num_inputs: 4,
            num_gates: 6,
            num_outputs: 1,
            max_fanin: 2,
            depth_bias: 2,
            delay: 10,
            seed: 7,
        });
        let nets = c.num_nets();
        let mut store = SignalStore::new(&c);
        let opening = store.all().to_vec();
        let mark = store.checkpoint();
        for op in ops {
            // Only the narrowing ops: `replace` is the explicit escape
            // hatch from monotonicity and is exercised above.
            if let Op::Narrow(n, target) = op {
                let n = n % nets;
                let before = store.get(NetId::from_index(n));
                store.narrow_to(NetId::from_index(n), target);
                let after = store.get(NetId::from_index(n));
                prop_assert!(after.is_subset_of(before), "domain widened");
            }
        }
        store.rollback(mark);
        prop_assert_eq!(store.all(), &opening[..]);
    }
}
