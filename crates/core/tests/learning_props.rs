//! Property tests for static learning: every learned implication and every
//! learned constant must hold in the circuit's exhaustive truth table.

use ltt_core::ImplicationTable;
use ltt_netlist::generators::{random_circuit, RandomCircuitConfig};
use ltt_netlist::{Circuit, CircuitBuilder, DelayInterval, GateKind};
use ltt_waveform::Level;
use proptest::prelude::*;

/// Checks every implication `y=v ⇒ x=w` of `table` against all input
/// assignments of `circuit` (steady-state semantics: classes are the
/// settled values).
fn assert_implications_hold(circuit: &Circuit, table: &ImplicationTable) {
    let n = circuit.inputs().len();
    assert!(n <= 14, "exhaustive check needs few inputs");
    // Precompute all net values for all vectors.
    let mut all_values: Vec<Vec<bool>> = Vec::with_capacity(1 << n);
    for v in 0..(1u64 << n) {
        let vector: Vec<bool> = (0..n).map(|i| (v >> i) & 1 == 1).collect();
        all_values.push(circuit.evaluate_all(&vector));
    }
    for y in circuit.net_ids() {
        for v in Level::BOTH {
            for &(x, w) in table.implied_by(y, v) {
                for values in &all_values {
                    if values[y.index()] == v.to_bool() {
                        assert_eq!(
                            values[x.index()],
                            w.to_bool(),
                            "implication {}={} => {}={} violated",
                            circuit.net(y).name(),
                            v,
                            circuit.net(x).name(),
                            w,
                        );
                    }
                }
            }
        }
    }
    for &(net, value) in table.constants() {
        for values in &all_values {
            assert_eq!(
                values[net.index()],
                value.to_bool(),
                "constant {}={} violated",
                circuit.net(net).name(),
                value
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn learned_implications_hold_on_random_circuits(seed in 0u64..5000) {
        let c = random_circuit(&RandomCircuitConfig {
            num_inputs: 6,
            num_gates: 20,
            num_outputs: 2,
            max_fanin: 3,
            depth_bias: 3,
            delay: 10,
            seed,
        });
        let table = ImplicationTable::learn(&c);
        assert_implications_hold(&c, &table);
    }

    #[test]
    fn stem_scoped_learning_is_a_subset(seed in 0u64..500) {
        let c = random_circuit(&RandomCircuitConfig {
            num_inputs: 6,
            num_gates: 25,
            num_outputs: 2,
            max_fanin: 3,
            depth_bias: 4,
            delay: 10,
            seed,
        });
        let stems = ImplicationTable::learn_stems(&c);
        assert_implications_hold(&c, &stems);
        let all = ImplicationTable::learn(&c);
        prop_assert!(stems.len() <= all.len());
    }
}

#[test]
fn learning_sees_through_reconvergence() {
    // z = AND(OR(a, b), OR(a, c)): a = 1 forces z = 1 — requires combining
    // two gates, which plain forward class propagation does see; the
    // interesting direction is the contrapositive z = 0 ⇒ a = 0.
    let d = DelayInterval::fixed(10);
    let mut bld = CircuitBuilder::new("rec");
    let a = bld.input("a");
    let b = bld.input("b");
    let c = bld.input("c");
    let o1 = bld.gate("o1", GateKind::Or, &[a, b], d);
    let o2 = bld.gate("o2", GateKind::Or, &[a, c], d);
    let z = bld.gate("z", GateKind::And, &[o1, o2], d);
    bld.mark_output(z);
    let circuit = bld.build().unwrap();
    let table = ImplicationTable::learn(&circuit);
    assert!(table.implied_by(a, Level::One).contains(&(z, Level::One)));
    assert!(table.implied_by(z, Level::Zero).contains(&(a, Level::Zero)));
    assert_implications_hold(&circuit, &table);
}

#[test]
fn learning_through_xor_chain() {
    // p = XOR(a, b); q = XNOR(a, b); r = AND(p, q) is constant 0. Per-net
    // class propagation cannot *prove* the constant (that needs relational
    // reasoning over (a, b)), but everything it does learn must hold, and
    // the trivial direction p = 0 ⇒ r = 0 must be present.
    let d = DelayInterval::fixed(10);
    let mut bld = CircuitBuilder::new("xorconst");
    let a = bld.input("a");
    let b = bld.input("b");
    let p = bld.gate("p", GateKind::Xor, &[a, b], d);
    let q = bld.gate("q", GateKind::Xnor, &[a, b], d);
    let r = bld.gate("r", GateKind::And, &[p, q], d);
    bld.mark_output(r);
    let circuit = bld.build().unwrap();
    let table = ImplicationTable::learn(&circuit);
    let _ = q;
    assert!(table.implied_by(p, Level::Zero).contains(&(r, Level::Zero)));
    assert_implications_hold(&circuit, &table);
}
