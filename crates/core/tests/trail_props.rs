//! Property tests for the trail-based selective state saving: arbitrary
//! interleavings of narrowings, checkpoints and rollbacks must restore
//! domains exactly (the correctness bedrock under backtracking, stem
//! correlation and case analysis).

use ltt_core::{DomainStore, Narrower};
use ltt_netlist::generators::{random_circuit, RandomCircuitConfig};
use ltt_netlist::NetId;
use ltt_waveform::{Aw, Signal, Time};
use proptest::prelude::*;

fn arb_signal() -> impl Strategy<Value = Signal> {
    let bound = prop_oneof![
        Just(Time::NEG_INF),
        (0i64..60).prop_map(Time::new),
        Just(Time::POS_INF),
    ];
    let aw = (bound.clone(), bound).prop_map(|(a, b)| Aw::new(a, b));
    (aw.clone(), aw).prop_map(|(z, o)| Signal::new(z, o))
}

#[derive(Clone, Debug)]
enum Op {
    Narrow(usize, Signal),
    Checkpoint,
    Rollback,
}

fn arb_ops(nets: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            4 => (0..nets, arb_signal()).prop_map(|(n, s)| Op::Narrow(n, s)),
            1 => Just(Op::Checkpoint),
            1 => Just(Op::Rollback),
        ],
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Replay semantics: a rollback restores exactly the domains captured
    /// at the checkpoint, for arbitrary op sequences.
    #[test]
    fn rollback_restores_snapshots(seed in 0u64..1000, ops in arb_ops(12)) {
        let c = random_circuit(&RandomCircuitConfig {
            num_inputs: 4,
            num_gates: 8,
            num_outputs: 1,
            max_fanin: 2,
            depth_bias: 2,
            delay: 10,
            seed,
        });
        let nets = c.num_nets();
        let mut store = DomainStore::new(&c);
        // (checkpoint, full snapshot of domains at that moment)
        let mut stack: Vec<(ltt_core::Checkpoint, Vec<Signal>)> = Vec::new();
        for op in ops {
            match op {
                Op::Narrow(n, target) => {
                    let n = n % nets;
                    let before = store.get(NetId::from_index(n));
                    let changed = store.narrow_to(NetId::from_index(n), target);
                    let after = store.get(NetId::from_index(n));
                    // Narrowing is intersection.
                    prop_assert_eq!(after, before.intersect(target));
                    prop_assert_eq!(changed, after != before);
                }
                Op::Checkpoint => {
                    stack.push((store.checkpoint(), store.all().to_vec()));
                }
                Op::Rollback => {
                    if let Some((mark, snapshot)) = stack.pop() {
                        store.rollback(mark);
                        prop_assert_eq!(store.all(), &snapshot[..]);
                        // Contradiction flag re-derived consistently.
                        prop_assert_eq!(
                            store.has_contradiction(),
                            snapshot.iter().any(|d| d.is_empty())
                        );
                    }
                }
            }
        }
        // Unwind everything: the store returns to each snapshot in order.
        while let Some((mark, snapshot)) = stack.pop() {
            store.rollback(mark);
            prop_assert_eq!(store.all(), &snapshot[..]);
        }
    }

    /// The narrower's rollback also clears pending work: after a rollback
    /// and re-fixpoint, the state is identical to never having made the
    /// rolled-back narrowing at all.
    #[test]
    fn narrower_rollback_is_transparent(seed in 0u64..1000, delta in 1i64..200) {
        let c = random_circuit(&RandomCircuitConfig {
            num_inputs: 5,
            num_gates: 15,
            num_outputs: 1,
            max_fanin: 3,
            depth_bias: 3,
            delay: 10,
            seed,
        });
        let s = c.outputs()[0];

        // Reference: inputs only.
        let mut reference = Narrower::new(&c);
        for &i in c.inputs() {
            reference.narrow_net(i, Signal::floating_input());
        }
        reference.reach_fixpoint();

        // Candidate: same, then a δ-constraint that gets rolled back.
        let mut candidate = Narrower::new(&c);
        for &i in c.inputs() {
            candidate.narrow_net(i, Signal::floating_input());
        }
        candidate.reach_fixpoint();
        let mark = candidate.checkpoint();
        candidate.narrow_net(s, Signal::violation(Time::new(delta)));
        candidate.reach_fixpoint();
        candidate.rollback(mark);

        prop_assert_eq!(reference.domains(), candidate.domains());
        prop_assert_eq!(
            reference.has_contradiction(),
            candidate.has_contradiction()
        );
    }
}
