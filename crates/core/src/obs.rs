//! Lightweight span/event recorder for per-stage observability.
//!
//! The verification pipeline attributes nearly all of its runtime to a
//! handful of stages — the base fixpoint, static learning, dominator
//! derivation, stem correlation, and the FAN-style case analysis. This
//! module records those stages as *spans* (named intervals with integer
//! counter arguments) so a run can be inspected as a flamegraph.
//!
//! Design constraints:
//!
//! * **Near-zero cost when disabled.** Every instrumentation site goes
//!   through an [`Obs`] handle. A disabled handle holds no recorder, and
//!   both [`Obs::start`] and [`Obs::span`] reduce to a single branch on
//!   an `Option` — no clock reads, no allocation, no locking.
//! * **No behavioural influence.** Recording only *observes* counters the
//!   solver already maintains; an instrumented run must produce reports
//!   bit-identical to an uninstrumented one (timing fields exempt).
//! * **std-only.** No external dependencies; the Chrome-trace emitter
//!   writes its own (tiny) JSON.
//!
//! The output of [`Recorder::chrome_trace`] is the Chrome trace event
//! format (a `{"traceEvents": [...]}` object of `"ph": "X"` complete
//! events) and loads directly in `chrome://tracing` or Perfetto.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Monotonically-assigned identifier for the current OS thread.
///
/// `std::thread::ThreadId` has no stable integer accessor, so spans are
/// tagged with a small process-wide counter assigned on first use per
/// thread. Identifiers start at 1.
fn current_tid() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// One recorded interval: a named stage with start time, duration, the
/// recording thread, and integer counter arguments.
#[derive(Clone, Debug)]
pub struct Span {
    /// Stage name, e.g. `"check.narrowing"`.
    pub name: &'static str,
    /// Category, e.g. `"stage"` or `"prepare"` — Chrome's `cat` field.
    pub cat: &'static str,
    /// Start offset from the recorder's epoch, in microseconds.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Recording thread (see [`current_tid`] for the numbering scheme).
    pub tid: u64,
    /// Integer counter arguments, rendered under Chrome's `args` key.
    pub args: Vec<(&'static str, i64)>,
}

/// Opaque start-of-span token returned by [`Obs::start`].
///
/// Holds the epoch offset when recording is enabled and nothing
/// otherwise, so disabled sites never read the clock.
#[derive(Clone, Copy, Debug)]
pub struct SpanStart(Option<u64>);

/// Collects [`Span`]s from any number of threads.
///
/// Timestamps are microsecond offsets from the recorder's creation
/// instant (its *epoch*), which keeps them compact and stable across
/// serialisation. The span list is protected by a mutex; spans are only
/// recorded at stage boundaries (a handful per check), so contention is
/// negligible next to the work being measured.
#[derive(Debug, Default)]
pub struct Recorder {
    epoch: Option<Instant>,
    spans: Mutex<Vec<Span>>,
}

impl Recorder {
    /// Creates an empty recorder whose epoch is "now".
    pub fn new() -> Recorder {
        Recorder {
            epoch: Some(Instant::now()),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Microseconds elapsed since the recorder's epoch.
    pub fn timestamp_us(&self) -> u64 {
        let epoch = match self.epoch {
            Some(e) => e,
            None => return 0,
        };
        u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Records one finished span.
    pub fn record(&self, span: Span) {
        self.spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(span);
    }

    /// Returns a snapshot of all spans recorded so far.
    pub fn spans(&self) -> Vec<Span> {
        self.spans.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when no spans have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders all recorded spans in the Chrome trace event format.
    ///
    /// The result is a `{"traceEvents": [...]}` JSON object of complete
    /// (`"ph": "X"`) events that loads in `chrome://tracing` and
    /// Perfetto. Spans are emitted sorted by start time so the output is
    /// stable regardless of recording interleaving.
    pub fn chrome_trace(&self) -> String {
        let mut spans = self.spans();
        spans.sort_by_key(|s| (s.start_us, s.tid, s.name));
        let mut out = String::with_capacity(64 + spans.len() * 128);
        out.push_str("{\"traceEvents\":[");
        for (i, span) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_json_string(&mut out, span.name);
            out.push_str(",\"cat\":");
            write_json_string(&mut out, span.cat);
            out.push_str(",\"ph\":\"X\",\"ts\":");
            out.push_str(&span.start_us.to_string());
            out.push_str(",\"dur\":");
            out.push_str(&span.dur_us.to_string());
            out.push_str(",\"pid\":1,\"tid\":");
            out.push_str(&span.tid.to_string());
            out.push_str(",\"args\":{");
            for (j, (key, value)) in span.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write_json_string(&mut out, key);
                out.push(':');
                out.push_str(&value.to_string());
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string emitter: quotes, escapes `"`/`\\` and control
/// characters. Span names and argument keys are static identifiers, but
/// escaping keeps the emitter safe for any input.
fn write_json_string(out: &mut String, text: &str) {
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Cheap cloneable handle used at instrumentation sites.
///
/// The default handle is *disabled*: it holds no recorder, and every
/// operation on it is a no-op behind a single `Option` branch. An
/// enabled handle (see [`Obs::recording`]) shares one [`Recorder`]
/// across clones, so per-check configs cloned into worker threads all
/// feed the same trace.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    recorder: Option<Arc<Recorder>>,
}

impl Obs {
    /// A disabled handle: all operations are no-ops.
    pub fn disabled() -> Obs {
        Obs { recorder: None }
    }

    /// A handle that records spans into `recorder`.
    pub fn recording(recorder: Arc<Recorder>) -> Obs {
        Obs {
            recorder: Some(recorder),
        }
    }

    /// True when spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.recorder.is_some()
    }

    /// The shared recorder, when enabled.
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.recorder.as_ref()
    }

    /// Marks the start of a span. Reads the clock only when enabled.
    #[inline]
    pub fn start(&self) -> SpanStart {
        SpanStart(self.recorder.as_ref().map(|r| r.timestamp_us()))
    }

    /// Closes a span opened with [`start`](Obs::start) and records it
    /// with the given counter arguments. A no-op when disabled.
    #[inline]
    pub fn span(
        &self,
        name: &'static str,
        cat: &'static str,
        start: SpanStart,
        args: &[(&'static str, i64)],
    ) {
        let (recorder, start_us) = match (&self.recorder, start.0) {
            (Some(r), Some(s)) => (r, s),
            _ => return,
        };
        let end_us = recorder.timestamp_us();
        recorder.record(Span {
            name,
            cat,
            start_us,
            dur_us: end_us.saturating_sub(start_us),
            tid: current_tid(),
            args: args.to_vec(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        let t0 = obs.start();
        obs.span("check.narrowing", "stage", t0, &[("events", 3)]);
        assert!(obs.recorder().is_none());
    }

    #[test]
    fn spans_round_trip_through_handle() {
        let recorder = Arc::new(Recorder::new());
        let obs = Obs::recording(recorder.clone());
        assert!(obs.is_enabled());
        let t0 = obs.start();
        obs.span("check.narrowing", "stage", t0, &[("events", 42)]);
        let spans = recorder.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "check.narrowing");
        assert_eq!(spans[0].cat, "stage");
        assert_eq!(spans[0].args, vec![("events", 42)]);
        assert!(spans[0].tid >= 1);
    }

    #[test]
    fn chrome_trace_is_valid_shape() {
        let recorder = Recorder::new();
        recorder.record(Span {
            name: "check.stems",
            cat: "stage",
            start_us: 10,
            dur_us: 5,
            tid: 2,
            args: vec![("stems", 7), ("effective", -1)],
        });
        recorder.record(Span {
            name: "prepare.base_fixpoint",
            cat: "prepare",
            start_us: 1,
            dur_us: 4,
            tid: 1,
            args: vec![],
        });
        let trace = recorder.chrome_trace();
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.ends_with("]}"));
        // Sorted by start time: the prepare span comes first.
        let prep = trace.find("prepare.base_fixpoint").unwrap();
        let stems = trace.find("check.stems").unwrap();
        assert!(prep < stems);
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"stems\":7"));
        assert!(trace.contains("\"effective\":-1"));
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut out = String::new();
        write_json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn empty_trace_is_still_an_object() {
        let recorder = Recorder::new();
        assert!(recorder.is_empty());
        assert_eq!(recorder.chrome_trace(), "{\"traceEvents\":[]}");
    }

    #[test]
    fn concurrent_recording_keeps_all_spans() {
        let recorder = Arc::new(Recorder::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let obs = Obs::recording(recorder.clone());
            handles.push(std::thread::spawn(move || {
                for _ in 0..25 {
                    let t0 = obs.start();
                    obs.span("check.narrowing", "stage", t0, &[]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(recorder.len(), 100);
    }
}
