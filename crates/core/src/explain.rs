//! Human-readable explanations of a timing check: what the narrowing
//! concluded, where the potential violation lives (dynamic carriers), which
//! nets gate it (timing dominators), and which stems the correlation stage
//! would split — the reporting layer on top of the §4 machinery.

use crate::carriers::{dynamic_carriers, fixpoint_with_dominators, timing_dominators};
use crate::solver::{FixpointResult, Narrower};
use crate::stems::correlation_stems;
use ltt_netlist::{Circuit, NetId};
use ltt_waveform::{Signal, Time};
use std::fmt;

/// A structured explanation of one timing check's narrowing state.
#[derive(Clone, Debug)]
pub struct Explanation {
    /// The checked output's name.
    pub output: String,
    /// The checked δ.
    pub delta: i64,
    /// Topological arrival of the output.
    pub topological: i64,
    /// Whether narrowing (with dominators) already proves the check safe.
    pub proved: bool,
    /// Dynamic carriers (name, dynamic distance), deepest first.
    pub carriers: Vec<(String, i64)>,
    /// Timing dominators from the output outwards (name, distance,
    /// implied earliest last transition δ − distance).
    pub dominators: Vec<(String, i64, i64)>,
    /// Reconvergent carrier stems the correlation stage would split.
    pub stems: Vec<String>,
    /// Nets whose last-transition lower bound is finite after narrowing —
    /// the localized violation region.
    pub localized: Vec<(String, i64)>,
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "check: can `{}` transition at or after {}? (topological bound {})",
            self.output, self.delta, self.topological
        )?;
        if self.proved {
            writeln!(
                f,
                "verdict: IMPOSSIBLE — narrowing + dominator implications refute it"
            )?;
            return Ok(());
        }
        writeln!(
            f,
            "narrowing is inconclusive; the potential violation is confined to:"
        )?;
        writeln!(f, "  dynamic carriers ({}):", self.carriers.len())?;
        for (name, k) in self.carriers.iter().take(12) {
            writeln!(f, "    {name} (distance {k})")?;
        }
        if self.carriers.len() > 12 {
            writeln!(f, "    … {} more", self.carriers.len() - 12)?;
        }
        writeln!(
            f,
            "  timing dominators (every violating path runs through ALL of these):"
        )?;
        for (name, k, lmin) in self.dominators.iter().take(12) {
            writeln!(
                f,
                "    {name} (distance {k}; must transition at or after {lmin})"
            )?;
        }
        if self.dominators.len() > 12 {
            writeln!(f, "    … {} more", self.dominators.len() - 12)?;
        }
        if !self.stems.is_empty() {
            writeln!(f, "  correlation stems: {}", self.stems.join(", "))?;
        }
        if !self.localized.is_empty() {
            writeln!(f, "  localized last-transition bounds:")?;
            for (name, lmin) in self.localized.iter().take(12) {
                writeln!(f, "    {name} ≥ {lmin}")?;
            }
            if self.localized.len() > 12 {
                writeln!(f, "    … {} more", self.localized.len() - 12)?;
            }
        }
        Ok(())
    }
}

/// Builds the explanation for `(ξ, output, δ)` by running the narrowing
/// (with dominator implications) and reading off the §4 structures.
///
/// # Examples
///
/// ```
/// use ltt_core::explain;
/// use ltt_netlist::generators::figure1;
///
/// let c = figure1(10);
/// let s = c.outputs()[0];
/// // δ = 61 is refuted outright.
/// assert!(explain(&c, s, 61).proved);
/// // δ = 60 is live: the explanation names the carriers and dominators.
/// let e = explain(&c, s, 60);
/// assert!(!e.proved);
/// assert!(e.dominators.iter().any(|(n, _, _)| n == "s"));
/// ```
pub fn explain(circuit: &Circuit, output: NetId, delta: i64) -> Explanation {
    let mut nw = Narrower::new(circuit);
    for &i in circuit.inputs() {
        nw.narrow_net(i, Signal::floating_input());
    }
    nw.narrow_net(output, Signal::violation(Time::new(delta)));
    let proved =
        fixpoint_with_dominators(&mut nw, output, delta, true) == FixpointResult::Contradiction;

    let name = |n: NetId| circuit.net(n).name().to_string();
    let mut explanation = Explanation {
        output: name(output),
        delta,
        topological: circuit.arrival_times()[output.index()],
        proved,
        carriers: Vec::new(),
        dominators: Vec::new(),
        stems: Vec::new(),
        localized: Vec::new(),
    };
    if proved {
        return explanation;
    }

    let carriers = dynamic_carriers(circuit, nw.domains(), output, delta);
    let mut carrier_list: Vec<(String, i64)> = circuit
        .net_ids()
        .filter_map(|n| carriers[n.index()].map(|k| (name(n), k)))
        .collect();
    carrier_list.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    explanation.carriers = carrier_list;

    explanation.dominators = timing_dominators(circuit, &carriers, output)
        .into_iter()
        .map(|d| {
            let k = carriers[d.index()].expect("dominators are carriers");
            (name(d), k, delta - k)
        })
        .collect();

    explanation.stems = correlation_stems(&nw, output, delta)
        .into_iter()
        .map(name)
        .collect();

    let mut localized: Vec<(String, i64)> = circuit
        .net_ids()
        .filter_map(|n| {
            let lmin = nw.domain(n).earliest_last_transition();
            lmin.finite().map(|t| (name(n), t))
        })
        .collect();
    localized.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    explanation.localized = localized;
    explanation
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltt_netlist::generators::{figure1, forked_false_path_chain, stem_conflict_circuit};

    #[test]
    fn figure1_explanation_at_60() {
        let c = figure1(10);
        let s = c.outputs()[0];
        let e = explain(&c, s, 60);
        assert!(!e.proved);
        assert_eq!(e.topological, 70);
        // The violation is localized at the output (both classes must
        // transition at or after 60); n7 appears among the carriers.
        assert!(e.localized.iter().any(|(n, t)| n == "s" && *t == 60));
        assert!(e.carriers.iter().any(|(n, _)| n == "n7"));
        // s is always a dominator of itself.
        assert_eq!(e.dominators.first().map(|(n, ..)| n.as_str()), Some("s"));
        let text = e.to_string();
        assert!(text.contains("dynamic carriers"));
        assert!(text.contains("n7"));
    }

    #[test]
    fn refuted_checks_say_impossible() {
        let c = figure1(10);
        let s = c.outputs()[0];
        let e = explain(&c, s, 61);
        assert!(e.proved);
        assert!(e.to_string().contains("IMPOSSIBLE"));
    }

    #[test]
    fn forked_gadget_reports_the_branch_point_as_dominator() {
        let c = forked_false_path_chain(6, 4, 10);
        let s = c.outputs()[0];
        // At δ = exact the check is live and the last prefix gate (the
        // fork point n6) dominates every long path.
        let e = explain(&c, s, 80);
        assert!(!e.proved);
        assert!(
            e.dominators.iter().any(|(n, ..)| n == "n6"),
            "dominators: {:?}",
            e.dominators
        );
    }

    #[test]
    fn display_truncates_long_dominator_lists() {
        use ltt_netlist::generators::cascade;
        use ltt_netlist::GateKind;
        // A deep chain: every net on it dominates the output, so the
        // dominator list is far longer than the 12-entry display cap.
        let c = cascade(GateKind::And, 20, 10);
        let s = c.outputs()[0];
        let e = explain(&c, s, 200);
        assert!(!e.proved);
        assert!(
            e.dominators.len() > 12,
            "dominators: {}",
            e.dominators.len()
        );
        let text = e.to_string();
        let dominator_lines = text
            .lines()
            .filter(|l| l.contains("must transition at or after"))
            .count();
        assert_eq!(
            dominator_lines, 12,
            "display must cap dominator lines:\n{text}"
        );
        let tail = format!("… {} more", e.dominators.len() - 12);
        assert!(text.contains(&tail), "missing tail marker in:\n{text}");
    }

    #[test]
    fn stem_gadget_reports_the_select_stem() {
        let c = stem_conflict_circuit(10, 10);
        let s = c.outputs()[0];
        let e = explain(&c, s, 90);
        assert!(!e.proved);
        assert!(e.stems.contains(&"y".to_string()), "stems: {:?}", e.stems);
    }
}
