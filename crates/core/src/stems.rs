//! Stem correlation (§5): partial correlation on reconvergent fanout stems.
//!
//! For a stem `Y`, the domains are recomputed twice — once with `Y`
//! restricted to class 0 and once to class 1 — and every net's domain is
//! replaced by the (abstract) union of the two results. The union still
//! contains every solution (each solution has `Y` settling to one of the
//! classes), so the step is sound, while removing waveforms that are
//! incompatible with *both* classes — pessimism that no local projection
//! can see. No decision is taken.

use crate::carriers::{dynamic_carriers, fixpoint_with_dominators};
use crate::solver::{FixpointResult, Narrower};
use ltt_netlist::NetId;
use ltt_waveform::{Level, Signal};

/// Statistics from a stem-correlation pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StemStats {
    /// Stems processed.
    pub stems: u64,
    /// Stems whose correlation narrowed at least one domain.
    pub effective_stems: u64,
    /// Split branches that turned out contradictory.
    pub dead_branches: u64,
}

/// Selects the correlation candidates: reconvergent fanout stems that are
/// dynamic carriers of the check (the paper's selection rule), ordered by
/// decreasing dynamic distance (stems furthest from the output first, so
/// their narrowing feeds the later ones).
///
/// Runs the reconvergence test (a BFS per candidate stem) on the fly; when
/// many checks share one circuit, precompute the stem set once and use
/// [`correlation_stems_masked`] instead.
pub fn correlation_stems(nw: &Narrower, s: NetId, delta: i64) -> Vec<NetId> {
    select_stems(nw, s, delta, |circuit, n| circuit.is_reconvergent_stem(n))
}

/// [`correlation_stems`] with a precomputed candidate mask:
/// `mask[n.index()]` must say whether net `n` is a reconvergent fanout stem
/// (see [`PreparedCircuit::stem_candidates`](crate::PreparedCircuit::stem_candidates)).
/// Produces exactly the same stems in the same order as
/// [`correlation_stems`].
///
/// # Panics
///
/// Panics if `mask.len()` is smaller than the circuit's net count.
pub fn correlation_stems_masked(nw: &Narrower, s: NetId, delta: i64, mask: &[bool]) -> Vec<NetId> {
    assert!(
        mask.len() >= nw.circuit().num_nets(),
        "one mask bit per net"
    );
    select_stems(nw, s, delta, |_, n| mask[n.index()])
}

fn select_stems(
    nw: &Narrower,
    s: NetId,
    delta: i64,
    is_reconvergent: impl Fn(&ltt_netlist::Circuit, NetId) -> bool,
) -> Vec<NetId> {
    let circuit = nw.circuit();
    let carriers = dynamic_carriers(circuit, nw.domains(), s, delta);
    let mut stems: Vec<(i64, NetId)> = circuit
        .net_ids()
        .filter(|&n| {
            carriers[n.index()].is_some()
                && circuit.net(n).is_fanout_stem()
                && is_reconvergent(circuit, n)
                && nw.domain(n).fixed_class().is_none()
        })
        .map(|n| (carriers[n.index()].expect("carrier"), n))
        .collect();
    stems.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    stems.into_iter().map(|(_, n)| n).collect()
}

/// Runs one stem-correlation pass over the given stems.
///
/// Each stem is split by class; each branch is narrowed to its fixpoint
/// (including dominator implications when `use_dominators` is set); the
/// per-net union of the branch results is intersected back into the live
/// domains, and the queue is run again before the next stem.
///
/// Returns [`FixpointResult::Contradiction`] if both branches of some stem
/// die (no violation possible) or the re-propagation finds a conflict.
///
/// If an attached budget trips mid-pass the current stem's split is rolled
/// back and [`FixpointResult::Interrupted`] is returned: the live domains
/// are then exactly the state after the last completed stem — still a
/// sound superset of the fixpoint.
pub fn stem_correlation(
    nw: &mut Narrower,
    s: NetId,
    delta: i64,
    stems: &[NetId],
    use_dominators: bool,
    stats: &mut StemStats,
) -> FixpointResult {
    let num_nets = nw.circuit().num_nets();
    for &stem in stems {
        if nw.domain(stem).fixed_class().is_some() {
            continue; // became fixed through an earlier stem's narrowing
        }
        stats.stems += 1;
        // A branch result: `Err(())` = interrupted, `Ok(None)` = dead
        // (contradictory), `Ok(Some(domains))` = narrowed fixpoint.
        let branch = |nw: &mut Narrower, level: Level| -> Result<Option<Vec<Signal>>, ()> {
            let mark = nw.checkpoint();
            let restriction = nw.domain(stem).restrict_to_class(level);
            nw.narrow_net(stem, restriction);
            let result = match fixpoint_with_dominators(nw, s, delta, use_dominators) {
                FixpointResult::Contradiction => Ok(None),
                FixpointResult::Fixpoint => Ok(Some(nw.domains().to_vec())),
                FixpointResult::Interrupted => Err(()),
            };
            nw.rollback(mark);
            result
        };
        let Ok(zero) = branch(nw, Level::Zero) else {
            return FixpointResult::Interrupted;
        };
        let Ok(one) = branch(nw, Level::One) else {
            return FixpointResult::Interrupted;
        };
        if zero.is_none() {
            stats.dead_branches += 1;
        }
        if one.is_none() {
            stats.dead_branches += 1;
        }
        let union: Vec<Signal> = match (&zero, &one) {
            (None, None) => return FixpointResult::Contradiction,
            (Some(d), None) | (None, Some(d)) => d.clone(),
            (Some(d0), Some(d1)) => (0..num_nets).map(|i| d0[i].union(d1[i])).collect(),
        };
        let mut changed = false;
        for (i, target) in union.into_iter().enumerate() {
            changed |= nw.narrow_net(NetId::from_index(i), target);
        }
        if changed {
            stats.effective_stems += 1;
            match fixpoint_with_dominators(nw, s, delta, use_dominators) {
                FixpointResult::Contradiction => return FixpointResult::Contradiction,
                FixpointResult::Interrupted => return FixpointResult::Interrupted,
                FixpointResult::Fixpoint => {}
            }
        }
    }
    FixpointResult::Fixpoint
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltt_netlist::{CircuitBuilder, DelayInterval, GateKind};
    use ltt_waveform::Time;

    fn d10() -> DelayInterval {
        DelayInterval::fixed(10)
    }

    /// A conflict circuit that needs a stem split: s = OR(AND(y, a_late),
    /// AND(¬y, b_late)) where a_late is sensitized only if y settles 0 and
    /// b_late only if y settles 1. Each split branch kills the check;
    /// the unsplit system cannot see it.
    fn conflict_mux() -> (ltt_netlist::Circuit, NetId, NetId) {
        let mut b = CircuitBuilder::new("conflict");
        let y = b.input("y");
        let xa = b.input("xa");
        let xb = b.input("xb");
        // a-chain: long path from xa, transparent only when y settles 0.
        let a1 = b.gate("a1", GateKind::Or, &[xa, y], d10());
        let a2 = b.gate("a2", GateKind::And, &[a1, xa], d10());
        let a3 = b.gate("a3", GateKind::Or, &[a2, y], d10());
        // b-chain: long path from xb, transparent only when y settles 1.
        let ny = b.gate("ny", GateKind::Not, &[y], d10());
        let b1 = b.gate("b1", GateKind::Or, &[xb, ny], d10());
        let b2 = b.gate("b2", GateKind::And, &[b1, xb], d10());
        let b3 = b.gate("b3", GateKind::Or, &[b2, ny], d10());
        // Mux by y.
        let m1 = b.gate("m1", GateKind::And, &[a3, y], d10());
        let m2 = b.gate("m2", GateKind::And, &[b3, ny], d10());
        let s = b.gate("s", GateKind::Or, &[m1, m2], d10());
        b.mark_output(s);
        let c = b.build().unwrap();
        let yn = c.net_by_name("y").unwrap();
        let sn = c.net_by_name("s").unwrap();
        (c, yn, sn)
    }

    #[test]
    fn stem_selection_prefers_carriers() {
        let (c, y, s) = conflict_mux();
        let mut nw = Narrower::new(&c);
        for &i in c.inputs() {
            nw.narrow_net(i, Signal::floating_input());
        }
        nw.narrow_net(s, Signal::violation(Time::new(1)));
        nw.reach_fixpoint();
        let stems = correlation_stems(&nw, s, 1);
        assert!(stems.contains(&y), "y is a reconvergent carrier stem");
    }

    #[test]
    fn correlation_proves_the_oracle_bound() {
        // Ground truth from the exhaustive floating-mode oracle: narrowing
        // + dominators + stem correlation must prove no violation at
        // exact + 1, and must NOT prove one at exact.
        let (c, _y, s) = conflict_mux();
        let exact = ltt_sta::exhaustive_floating_delay(&c, s)
            .expect("small cone")
            .delay;
        assert!(exact < c.topological_delay(), "circuit has a false path");
        for (delta, expect_contradiction) in [(exact + 1, true), (exact, false)] {
            let mut nw = Narrower::new(&c);
            for &i in c.inputs() {
                nw.narrow_net(i, Signal::floating_input());
            }
            nw.narrow_net(s, Signal::violation(Time::new(delta)));
            let mut r = fixpoint_with_dominators(&mut nw, s, delta, true);
            if r == FixpointResult::Fixpoint {
                let stems = correlation_stems(&nw, s, delta);
                let mut stats = StemStats::default();
                r = stem_correlation(&mut nw, s, delta, &stems, true, &mut stats);
            }
            if expect_contradiction {
                assert_eq!(r, FixpointResult::Contradiction, "δ = {delta}");
            } else {
                assert_eq!(r, FixpointResult::Fixpoint, "δ = {delta}");
            }
        }
    }

    #[test]
    fn correlation_is_sound_on_satisfiable_checks() {
        // On the figure-1 circuit at δ = 60 (violation exists), stem
        // correlation must not produce a contradiction.
        let c = ltt_netlist::generators::figure1(10);
        let s = c.outputs()[0];
        let mut nw = Narrower::new(&c);
        for &i in c.inputs() {
            nw.narrow_net(i, Signal::floating_input());
        }
        nw.narrow_net(s, Signal::violation(Time::new(60)));
        assert_eq!(
            fixpoint_with_dominators(&mut nw, s, 60, true),
            FixpointResult::Fixpoint
        );
        let stems = correlation_stems(&nw, s, 60);
        let mut stats = StemStats::default();
        let r = stem_correlation(&mut nw, s, 60, &stems, true, &mut stats);
        assert_eq!(r, FixpointResult::Fixpoint);
    }
}
