//! Per-circuit analysis cache and check sessions.
//!
//! Every stage of the pipeline leans on analyses that depend only on the
//! circuit, not on the individual check `σ = (ξ, s, δ)`: the static
//! learning table (§4), the SCOAP controllabilities/observabilities that
//! guide the case analysis (§5), the reconvergent-fanout-stem set that
//! seeds stem correlation (§5), arrival times and per-output longest-path
//! distances, and the static timing dominators of each output's critical
//! carrier circuit. Re-deriving them per check is pure overhead once a
//! workload runs more than one check — a delay search probes O(log top)
//! deltas, `verify_all_outputs` visits every output, and the Table 1
//! harness runs whole suites.
//!
//! [`PreparedCircuit`] computes each of these **once per circuit** (lazily,
//! so ablated configurations pay nothing for stages they skip) and hands
//! shared references to every check. [`CheckSession`] pairs a prepared
//! circuit with one [`VerifyConfig`] and additionally caches the **base
//! fixpoint** — the greatest fixpoint of the input-and-learning constraints
//! *without* any δ constraint — which every check of the session starts
//! from. Both types are `Sync`: a batch executor
//! ([`BatchRunner`](crate::BatchRunner)) can fan checks out across threads
//! with no per-thread re-preparation, and because each check still runs on
//! its own [`Narrower`], parallel results are identical to serial ones.

use crate::budget::Budget;
use crate::carriers::fixpoint_with_dominators;
use crate::check::{
    run_pipeline, ConeMode, DelayMode, DelaySearch, LearningMode, PipelineScope, ProfilePoint,
    Verdict, VerifyConfig, VerifyReport,
};
use crate::domain::SignalStore;
use crate::fan::{fill_level, CaseScope};
use crate::learning::ImplicationTable;
use crate::obs::Obs;
use crate::scoap::{Controllability, Observability};
use crate::solver::{FixpointResult, NarrowScope, Narrower};
use ltt_netlist::{Circuit, ConeView, NetId};
use ltt_waveform::{Level, Signal, Time};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// How a prepared circuit holds its netlist.
///
/// The classic, allocation-free form borrows the caller's circuit for the
/// scope of a run. The shared form owns an [`Arc`], which is what a
/// long-lived circuit registry (the serving layer) needs: the resulting
/// `PreparedCircuit<'static>` / `CheckSession<'static>` can live in a cache
/// and outlive any one request, and dropping the cache entry frees the
/// circuit — no leaked `'static` borrows.
enum CircuitHandle<'c> {
    /// Borrowed for the scope `'c` (one-shot runs, tests, the CLI).
    Borrowed(&'c Circuit),
    /// Shared ownership (registry entries; `'c` may be `'static`).
    Shared(Arc<Circuit>),
}

impl CircuitHandle<'_> {
    fn get(&self) -> &Circuit {
        match self {
            CircuitHandle::Borrowed(c) => c,
            CircuitHandle::Shared(c) => c,
        }
    }
}

/// Per-output static analyses (computed lazily, cached per output).
#[derive(Clone)]
struct OutputAnalysis {
    /// `longest_to(output)`: max path delay from each net to the output.
    distances: Vec<Option<i64>>,
    /// Timing dominators of the static carrier circuit at δ = arrival —
    /// the nets every critical-length path must cross.
    dominators: Vec<NetId>,
}

/// Everything a cone-scoped check of one output needs, derived once per
/// output and shared by every check (and both cone modes):
///
/// * the [`ConeView`] — the output's transitive fanin as a dense,
///   order-preservingly renumbered sub-circuit (the *sliced* mode's
///   circuit);
/// * whole-circuit-indexed masks restricting propagation and decisions to
///   the cone (the *masked* mode's scope);
/// * the cone-local reconvergent-stem candidates and fanout-stem flags
///   (reader counts *inside* the cone — a net with one in-cone and two
///   out-of-cone readers is a whole-circuit stem but not a cone stem);
/// * the parent implication table sliced to cone-internal pairs
///   ([`ImplicationTable::sliced`]) — *not* a table re-learned on the
///   sub-circuit, which could differ.
pub struct ConeAnalysis {
    view: ConeView,
    scope: Arc<NarrowScope>,
    case: CaseScope,
    /// Sub-circuit reconvergent-stem candidates, whole-circuit-indexed.
    stem_candidates: Vec<bool>,
    /// The parent table sliced to the cone, sub-circuit-indexed.
    table: Option<Arc<ImplicationTable>>,
}

impl ConeAnalysis {
    fn build(circuit: &Circuit, output: NetId, table: Option<&Arc<ImplicationTable>>) -> Self {
        let view = ConeView::extract(circuit, output);
        let sub = view.circuit();
        let nets: Vec<bool> = circuit.net_ids().map(|n| view.contains_net(n)).collect();
        let gates: Vec<bool> = circuit.gate_ids().map(|g| view.contains_gate(g)).collect();
        let inputs: Vec<NetId> = circuit
            .inputs()
            .iter()
            .copied()
            .filter(|&i| view.contains_net(i))
            .collect();
        let mut stems = vec![false; circuit.num_nets()];
        let mut stem_candidates = vec![false; circuit.num_nets()];
        for m in sub.net_ids() {
            let old = view.net_from_sub(m).index();
            stems[old] = sub.net(m).is_fanout_stem();
            stem_candidates[old] = stems[old] && sub.is_reconvergent_stem(m);
        }
        let sliced = table.map(|t| Arc::new(t.sliced(&view)));
        ConeAnalysis {
            scope: Arc::new(NarrowScope::new(gates, nets.clone())),
            case: CaseScope {
                nets,
                gates: circuit.gate_ids().map(|g| view.contains_gate(g)).collect(),
                inputs,
                stems,
            },
            stem_candidates,
            table: sliced,
            view,
        }
    }

    /// The cone as a renumbered sub-circuit.
    pub fn view(&self) -> &ConeView {
        &self.view
    }

    /// Whether the cone contains any of the given (whole-circuit) nets —
    /// the ECO invalidation test.
    pub fn intersects(&self, nets: &[NetId]) -> bool {
        self.view.intersects(nets)
    }
}

/// All check-independent analyses of one circuit, computed at most once.
///
/// The fields are lazy ([`OnceLock`]), so a narrowing-only configuration
/// never pays for SCOAP or the stem reconvergence BFS, while a full
/// pipeline computes each exactly once no matter how many checks run —
/// serially or from many threads at once.
///
/// # Examples
///
/// ```
/// use ltt_core::{LearningMode, PreparedCircuit};
/// use ltt_netlist::generators::figure1;
///
/// let c = figure1(10);
/// let prepared = PreparedCircuit::new(&c, LearningMode::Stems);
/// let s = c.outputs()[0];
/// // Arrival times and the critical-path dominators are cached per output.
/// assert_eq!(prepared.arrival_times()[s.index()], 70);
/// assert!(!prepared.static_dominators(s).is_empty());
/// ```
pub struct PreparedCircuit<'c> {
    circuit: CircuitHandle<'c>,
    table: Option<Arc<ImplicationTable>>,
    arrival: OnceLock<Vec<i64>>,
    controllability: OnceLock<Controllability>,
    observability: OnceLock<Observability>,
    stem_mask: OnceLock<Vec<bool>>,
    per_output: Vec<OnceLock<OutputAnalysis>>,
    /// Per-output cone analyses (`None` once computed = the cone covers
    /// the whole circuit, where cone modes degenerate to the legacy path).
    cones: Vec<OnceLock<Option<Arc<ConeAnalysis>>>>,
    /// Observability sink for the lazy per-circuit analyses. Disabled by
    /// default; [`CheckSession::with_prepared`] installs the session
    /// config's handle so the one-time derivations show up in traces.
    obs: Obs,
}

impl<'c> PreparedCircuit<'c> {
    /// Prepares a circuit, learning the implication table per `learning`
    /// (the one analysis that is *not* lazy: its constants restrict every
    /// check's base state, so it is always needed up front).
    pub fn new(circuit: &'c Circuit, learning: LearningMode) -> Self {
        let table = match learning {
            LearningMode::Off => None,
            LearningMode::Stems => Some(Arc::new(ImplicationTable::learn_stems(circuit))),
            LearningMode::All => Some(Arc::new(ImplicationTable::learn(circuit))),
        };
        Self::with_table(circuit, table)
    }

    /// Prepares a circuit around an already-learned implication table
    /// (or none), for callers that manage learning themselves.
    pub fn with_table(circuit: &'c Circuit, table: Option<Arc<ImplicationTable>>) -> Self {
        Self::from_handle(CircuitHandle::Borrowed(circuit), table)
    }

    /// [`PreparedCircuit::new`] with shared ownership: the prepared circuit
    /// owns (a reference count on) its netlist, so it needs no enclosing
    /// borrow scope. This is the registry hook — a circuit cache stores
    /// `PreparedCircuit<'static>` entries and each entry's analyses are
    /// computed once, shared by every request that names the circuit.
    pub fn new_shared(circuit: Arc<Circuit>, learning: LearningMode) -> PreparedCircuit<'static> {
        let table = match learning {
            LearningMode::Off => None,
            LearningMode::Stems => Some(Arc::new(ImplicationTable::learn_stems(&circuit))),
            LearningMode::All => Some(Arc::new(ImplicationTable::learn(&circuit))),
        };
        PreparedCircuit::from_handle(CircuitHandle::Shared(circuit), table)
    }

    fn from_handle(circuit: CircuitHandle<'c>, table: Option<Arc<ImplicationTable>>) -> Self {
        let num_outputs = circuit.get().outputs().len();
        PreparedCircuit {
            circuit,
            table,
            arrival: OnceLock::new(),
            controllability: OnceLock::new(),
            observability: OnceLock::new(),
            stem_mask: OnceLock::new(),
            per_output: (0..num_outputs).map(|_| OnceLock::new()).collect(),
            cones: (0..num_outputs).map(|_| OnceLock::new()).collect(),
            obs: Obs::disabled(),
        }
    }

    /// The underlying circuit.
    pub fn circuit(&self) -> &Circuit {
        self.circuit.get()
    }

    /// The shared static-learning table, if learning is enabled.
    pub fn implication_table(&self) -> Option<&Arc<ImplicationTable>> {
        self.table.as_ref()
    }

    /// Topological arrival times (`max` delay to each net), cached.
    pub fn arrival_times(&self) -> &[i64] {
        self.arrival.get_or_init(|| self.circuit().arrival_times())
    }

    /// SCOAP controllabilities (case-analysis guidance), cached.
    pub fn controllability(&self) -> &Controllability {
        self.controllability
            .get_or_init(|| Controllability::compute(self.circuit()))
    }

    /// SCOAP observabilities, cached.
    pub fn observability(&self) -> &Observability {
        self.observability
            .get_or_init(|| Observability::compute(self.circuit(), self.controllability()))
    }

    /// Per-net mask of reconvergent fanout stems — the stem-correlation
    /// candidate set, cached (the reconvergence test is a BFS per stem, by
    /// far the most expensive of the per-check re-derivations it replaces).
    pub fn stem_candidates(&self) -> &[bool] {
        self.stem_mask.get_or_init(|| {
            let circuit = self.circuit();
            circuit
                .net_ids()
                .map(|n| circuit.net(n).is_fanout_stem() && circuit.is_reconvergent_stem(n))
                .collect()
        })
    }

    /// Longest-path distances from every net to `output`, cached per
    /// output.
    ///
    /// # Panics
    ///
    /// Panics if `output` is not a primary output (per-output caches exist
    /// for primary outputs only).
    pub fn distances_to(&self, output: NetId) -> &[Option<i64>] {
        &self.output_analysis(output).distances
    }

    /// The static timing dominators of `output`'s critical carrier circuit
    /// (δ = arrival time): the nets that **every** critical-length path to
    /// `output` crosses, ordered from the output towards the inputs.
    /// Cached per output.
    ///
    /// # Panics
    ///
    /// Panics if `output` is not a primary output.
    pub fn static_dominators(&self, output: NetId) -> &[NetId] {
        &self.output_analysis(output).dominators
    }

    /// The fanin-cone analysis of `output`, cached per output. `None` when
    /// no cone-scoped run applies: `output` is not a primary output, or its
    /// cone covers the whole circuit (slicing would be the identity and the
    /// legacy path is strictly cheaper).
    pub fn cone(&self, output: NetId) -> Option<&Arc<ConeAnalysis>> {
        let pos = self.circuit().outputs().iter().position(|&o| o == output)?;
        self.cones[pos]
            .get_or_init(|| {
                let span = self.obs.start();
                let ca = ConeAnalysis::build(self.circuit(), output, self.table.as_ref());
                self.obs.span(
                    "prepare.cone",
                    "prepare",
                    span,
                    &[
                        ("output", i64::try_from(output.index()).unwrap_or(i64::MAX)),
                        (
                            "cone_nets",
                            i64::try_from(ca.view.nets().len()).unwrap_or(i64::MAX),
                        ),
                    ],
                );
                if ca.view.is_complete() {
                    None
                } else {
                    Some(Arc::new(ca))
                }
            })
            .as_ref()
    }

    fn output_analysis(&self, output: NetId) -> &OutputAnalysis {
        let pos = self
            .circuit()
            .outputs()
            .iter()
            .position(|&o| o == output)
            .expect("per-output analyses exist for primary outputs only");
        self.per_output[pos].get_or_init(|| {
            let span = self.obs.start();
            let distances = self.circuit().longest_to(output);
            let arrival = self.arrival_times();
            let delta = arrival[output.index()];
            let carriers: Vec<Option<i64>> = self
                .circuit()
                .net_ids()
                .map(|x| match distances[x.index()] {
                    Some(d) if arrival[x.index()] + d >= delta => Some(d),
                    _ => None,
                })
                .collect();
            let dominators = crate::carriers::timing_dominators(self.circuit(), &carriers, output);
            self.obs.span(
                "prepare.dominators",
                "prepare",
                span,
                &[
                    ("output", i64::try_from(output.index()).unwrap_or(i64::MAX)),
                    (
                        "dominators",
                        i64::try_from(dominators.len()).unwrap_or(i64::MAX),
                    ),
                ],
            );
            OutputAnalysis {
                distances,
                dominators,
            }
        })
    }
}

/// One circuit + one configuration + the shared base fixpoint: the unit a
/// batch of checks runs against.
///
/// Every check method seeds a fresh [`Narrower`] from the cached base
/// fixpoint (inputs + learning constants, no δ), applies the δ constraint
/// (and any assumptions), and runs the staged pipeline. The greatest
/// fixpoint of a constraint system is unique, so verdicts and witness
/// vectors are identical to running each check from scratch — only the
/// redundant re-propagation is gone.
///
/// `CheckSession` is `Sync`; [`BatchRunner`](crate::BatchRunner) shares one
/// session across worker threads.
///
/// # Examples
///
/// ```
/// use ltt_core::{CheckSession, VerifyConfig};
/// use ltt_netlist::generators::figure1;
///
/// let c = figure1(10);
/// let session = CheckSession::new(&c, VerifyConfig::default());
/// let s = c.outputs()[0];
/// assert!(session.verify(s, 61).verdict.is_no_violation());
/// assert!(session.verify(s, 60).verdict.is_violation());
/// // The exact-delay search reuses the same cached analyses per probe.
/// assert_eq!(session.exact_delay(s).delay, 60);
/// ```
pub struct CheckSession<'c> {
    prepared: PreparedCircuit<'c>,
    config: VerifyConfig,
    /// The base-fixpoint store prototype: planes derived once, cloned (two
    /// flat memcpys) into every per-check narrower.
    base: OnceLock<SignalStore>,
    /// Per-output cone-sliced sub-sessions (the `ConeMode::Sliced` path):
    /// each wraps the cone's renumbered sub-circuit with a base store
    /// sliced from the whole-circuit base fixpoint, so a sliced check
    /// seeds with two memcpys *sized to the cone*. `Arc` so an ECO rebase
    /// can transplant untouched cone sessions wholesale.
    cone_sessions: Vec<OnceLock<Arc<CheckSession<'static>>>>,
}

impl<'c> CheckSession<'c> {
    /// Opens a session: prepares the circuit per the config's learning
    /// mode. The base fixpoint is computed lazily on the first check.
    pub fn new(circuit: &'c Circuit, config: VerifyConfig) -> Self {
        let span = config.obs.start();
        let prepared = PreparedCircuit::new(circuit, config.learning);
        config
            .obs
            .span("prepare.static_learning", "prepare", span, &[]);
        Self::with_prepared(prepared, config)
    }

    /// [`CheckSession::new`] with shared ownership of the circuit: the
    /// session carries its own reference count, so it can live in a
    /// long-lived registry (`CheckSession<'static>`) and be dropped freely.
    pub fn new_shared(circuit: Arc<Circuit>, config: VerifyConfig) -> CheckSession<'static> {
        let span = config.obs.start();
        let prepared = PreparedCircuit::new_shared(circuit, config.learning);
        config
            .obs
            .span("prepare.static_learning", "prepare", span, &[]);
        CheckSession::with_prepared(prepared, config)
    }

    /// Opens a session around an existing [`PreparedCircuit`] (whose table,
    /// not `config.learning`, decides what learning applies). The config's
    /// observability handle is installed on the prepared circuit so its
    /// lazy one-time derivations show up in traces too.
    pub fn with_prepared(mut prepared: PreparedCircuit<'c>, config: VerifyConfig) -> Self {
        prepared.obs = config.obs.clone();
        let num_outputs = prepared.circuit().outputs().len();
        CheckSession {
            prepared,
            config,
            base: OnceLock::new(),
            cone_sessions: (0..num_outputs).map(|_| OnceLock::new()).collect(),
        }
    }

    /// The shared per-circuit analyses.
    pub fn prepared(&self) -> &PreparedCircuit<'c> {
        &self.prepared
    }

    /// The session's pipeline configuration.
    pub fn config(&self) -> &VerifyConfig {
        &self.config
    }

    /// The circuit under check.
    pub fn circuit(&self) -> &Circuit {
        self.prepared.circuit()
    }

    /// Forces the base fixpoint now (it is otherwise computed on the first
    /// check). A batch executor calls this before fanning out so workers
    /// start from a warm cache instead of serializing on its computation.
    pub fn warm_up(&self) {
        let _ = self.base_store();
    }

    /// Opens a session for an edited revision of this session's circuit,
    /// transplanting every analysis the edit provably leaves intact — the
    /// core of ECO-style incremental re-verification.
    ///
    /// `dirty` and `structural` come from
    /// [`Circuit::apply_edit`](ltt_netlist::Circuit::apply_edit)'s
    /// [`EditOutcome`](ltt_netlist::EditOutcome); `circuit` must be that
    /// outcome's circuit (same nets and gates, edited delays/wiring).
    ///
    /// What transfers when `structural` is `false` (delay-only edits):
    ///
    /// * the learned implication table — implications are about logic
    ///   classes, not times;
    /// * SCOAP controllabilities/observabilities and the reconvergent-stem
    ///   candidate set — functions of connectivity only;
    /// * per output, when the output's fanin cone contains **no** dirty net
    ///   *and* no net whose base-fixpoint domain changed
    ///   ([`Self::base_divergence`] — backward narrowing through fringe
    ///   gates can push an out-of-cone delay change into cone-net
    ///   domains): the distance/dominator analysis, the cone analysis, and
    ///   the warmed cone sub-session, wholesale.
    ///
    /// A `structural` edit keeps nothing: connectivity-derived analyses
    /// are rebuilt lazily, and the table is re-learned here.
    ///
    /// # Panics
    ///
    /// Panics if `circuit`'s net/gate counts differ from this session's
    /// (it must be an [`EditOutcome`](ltt_netlist::EditOutcome) revision,
    /// not an unrelated circuit).
    pub fn rebase(
        &self,
        circuit: Arc<Circuit>,
        dirty: &[NetId],
        structural: bool,
    ) -> CheckSession<'static> {
        assert_eq!(
            (circuit.num_nets(), circuit.num_gates()),
            (self.circuit().num_nets(), self.circuit().num_gates()),
            "rebase requires an edited revision of the same circuit"
        );
        let table = if structural {
            match self.config.learning {
                LearningMode::Off => None,
                LearningMode::Stems => Some(Arc::new(ImplicationTable::learn_stems(&circuit))),
                LearningMode::All => Some(Arc::new(ImplicationTable::learn(&circuit))),
            }
        } else {
            self.prepared.table.clone()
        };
        let prepared = PreparedCircuit::from_handle(CircuitHandle::Shared(circuit), table);
        let session = CheckSession::with_prepared(prepared, self.config.clone());
        if structural {
            return session;
        }
        if let Some(cc) = self.prepared.controllability.get() {
            let _ = session.prepared.controllability.set(cc.clone());
        }
        if let Some(ob) = self.prepared.observability.get() {
            let _ = session.prepared.observability.set(ob.clone());
        }
        if let Some(mask) = self.prepared.stem_mask.get() {
            let _ = session.prepared.stem_mask.set(mask.clone());
        }
        // Per-output transplants need the base divergence, which forces
        // both base fixpoints — work the new session's first check pays
        // anyway.
        let mut stale: Vec<NetId> = dirty.to_vec();
        stale.extend(self.base_divergence(&session));
        for pos in 0..self.prepared.cones.len() {
            let ca = match self.prepared.cones[pos].get() {
                None => continue,
                Some(None) => {
                    // "Cone covers the whole circuit" is a connectivity
                    // fact; it survives any delay-only edit.
                    let _ = session.prepared.cones[pos].set(None);
                    continue;
                }
                Some(Some(ca)) => ca,
            };
            if ca.intersects(&stale) {
                continue;
            }
            let _ = session.prepared.cones[pos].set(Some(ca.clone()));
            if let Some(oa) = self.prepared.per_output[pos].get() {
                let _ = session.prepared.per_output[pos].set(oa.clone());
            }
            if let Some(sub) = self.cone_sessions[pos].get() {
                let _ = session.cone_sessions[pos].set(sub.clone());
            }
        }
        session
    }

    /// The nets whose base-fixpoint domains differ between this session
    /// and `other` (same-sized circuit). Forces both base fixpoints. An
    /// edit's full influence on cached cone state is `dirty ∪
    /// base_divergence`: `dirty` is where constraints changed,
    /// `base_divergence` is where their fixpoint consequences landed.
    pub fn base_divergence(&self, other: &CheckSession<'_>) -> Vec<NetId> {
        let a = self.base_store();
        let b = other.base_store();
        assert_eq!(a.all().len(), b.all().len(), "circuits differ in size");
        self.circuit()
            .net_ids()
            .filter(|&n| a.get(n) != b.get(n))
            .collect()
    }

    /// Whether the session's base fixpoint is already contradictory (the
    /// circuit admits no waveform assignment at all under the input mode).
    /// Forces the base fixpoint. Callers transplanting per-output results
    /// across a rebase must treat a contradictory base as all-stale: the
    /// degenerate path reports against the whole circuit, not a cone.
    pub fn base_contradictory(&self) -> bool {
        self.base_store().has_contradiction()
    }

    /// A narrower carrying the input-mode and learning-constant
    /// constraints, not yet propagated.
    fn fresh_narrower(&self) -> Narrower<'_> {
        let circuit = self.prepared.circuit();
        let mut nw = Narrower::new(circuit);
        if let Some(table) = self.prepared.implication_table() {
            for &(net, level) in table.constants() {
                let restriction = nw.domain(net).restrict_to_class(level);
                nw.narrow_net(net, restriction);
            }
            nw.set_implications(table.clone());
        }
        let input_domain = match self.config.delay_mode {
            DelayMode::Floating => Signal::floating_input(),
            DelayMode::Transition => Signal::transition_input(),
        };
        for &i in circuit.inputs() {
            nw.narrow_net(i, input_domain);
        }
        nw
    }

    /// The session's base-fixpoint store (computed once).
    fn base_store(&self) -> &SignalStore {
        self.base.get_or_init(|| {
            let span = self.config.obs.start();
            let mut nw = self.fresh_narrower();
            nw.reach_fixpoint();
            let stats = nw.stats();
            self.config.obs.span(
                "prepare.base_fixpoint",
                "prepare",
                span,
                &[
                    ("events", i64::try_from(stats.events).unwrap_or(i64::MAX)),
                    (
                        "narrowings",
                        i64::try_from(stats.narrowings).unwrap_or(i64::MAX),
                    ),
                ],
            );
            SignalStore::from_domains(nw.domains())
        })
    }

    /// A narrower seeded at the session's base fixpoint (computed once).
    fn narrower_at_base(&self) -> Narrower<'_> {
        let mut nw = Narrower::from_store(self.prepared.circuit(), self.base_store().clone());
        if let Some(table) = self.prepared.implication_table() {
            nw.set_implications(table.clone());
        }
        nw
    }

    /// Runs one check under an explicit pipeline config (used internally
    /// by the delay search's search-free fallback; `config` must agree
    /// with the session on `delay_mode` and learning for the shared base
    /// to be sound).
    pub(crate) fn verify_cfg(
        &self,
        output: NetId,
        delta: i64,
        config: &VerifyConfig,
        assumptions: &[(NetId, Level)],
    ) -> VerifyReport {
        if config.cone != ConeMode::Off {
            if let Some((pos, ca)) = self.cone_target(output, assumptions) {
                let ca = ca.clone();
                return if config.cone == ConeMode::Masked {
                    self.verify_masked(&ca, output, delta, config, assumptions)
                } else {
                    self.verify_sliced(pos, &ca, output, delta, config, assumptions)
                };
            }
        }
        self.verify_whole(output, delta, config, assumptions)
    }

    /// The legacy whole-circuit pipeline run.
    fn verify_whole(
        &self,
        output: NetId,
        delta: i64,
        config: &VerifyConfig,
        assumptions: &[(NetId, Level)],
    ) -> VerifyReport {
        let start = Instant::now();
        let mut nw = self.narrower_at_base();
        for &(net, level) in assumptions {
            let restriction = nw.domain(net).restrict_to_class(level);
            nw.narrow_net(net, restriction);
        }
        run_pipeline(&mut nw, &self.prepared, output, delta, config, start, None)
    }

    /// The cone a check may run in, if any. Cone-scoped runs require:
    /// `output` is a primary output (the per-output caches exist for those
    /// only), the cone is a strict subset of the circuit, every assumption
    /// net lies inside it, and the whole-circuit base fixpoint is
    /// consistent — a contradiction on an out-of-cone net refutes *every*
    /// check, but a cone-sized store cannot see it, so such (degenerate)
    /// circuits take the legacy path.
    fn cone_target(
        &self,
        output: NetId,
        assumptions: &[(NetId, Level)],
    ) -> Option<(usize, &Arc<ConeAnalysis>)> {
        let pos = self.circuit().outputs().iter().position(|&o| o == output)?;
        let ca = self.prepared.cone(output)?;
        if !assumptions.iter().all(|&(n, _)| ca.view.contains_net(n)) {
            return None;
        }
        if self.base_store().has_contradiction() {
            return None;
        }
        Some((pos, ca))
    }

    /// The masked cone run: the whole-circuit store, with propagation
    /// (gate scheduling, implication firing) and case-analysis decisions
    /// restricted to the cone. Bit-identical to [`Self::verify_sliced`] by
    /// construction — the sliced run executes the same event schedule on
    /// renumbered ids — while sharing the legacy path's store layout, so it
    /// serves as the identity-testing reference.
    fn verify_masked(
        &self,
        ca: &ConeAnalysis,
        output: NetId,
        delta: i64,
        config: &VerifyConfig,
        assumptions: &[(NetId, Level)],
    ) -> VerifyReport {
        let start = Instant::now();
        let mut nw = self.narrower_at_base();
        nw.set_scope(ca.scope.clone());
        for &(net, level) in assumptions {
            let restriction = nw.domain(net).restrict_to_class(level);
            nw.narrow_net(net, restriction);
        }
        let scope = PipelineScope {
            stem_candidates: &ca.stem_candidates,
            case: &ca.case,
        };
        run_pipeline(
            &mut nw,
            &self.prepared,
            output,
            delta,
            config,
            start,
            Some(&scope),
        )
    }

    /// The sliced cone run: delegates to the output's cached sub-session,
    /// whose circuit is the cone renumbered densely and whose base store
    /// is the whole-circuit base fixpoint sliced to cone nets. Every
    /// per-check allocation and memcpy is sized to the cone. The report is
    /// mapped back to whole-circuit terms: the output id, and a violation
    /// vector widened over all primary inputs (out-of-cone inputs cannot
    /// affect `output`; they take [`fill_level`] of their base domains —
    /// the same rule the masked run applies, so vectors agree bit for
    /// bit).
    fn verify_sliced(
        &self,
        pos: usize,
        ca: &Arc<ConeAnalysis>,
        output: NetId,
        delta: i64,
        config: &VerifyConfig,
        assumptions: &[(NetId, Level)],
    ) -> VerifyReport {
        let session = self.cone_session(pos, ca);
        let view = ca.view();
        let sub_assumptions: Vec<(NetId, Level)> = assumptions
            .iter()
            .map(|&(n, l)| (view.net_to_sub(n).expect("assumption net in cone"), l))
            .collect();
        let sub_config = VerifyConfig {
            cone: ConeMode::Off,
            ..config.clone()
        };
        let mut report =
            session.verify_cfg(view.sub_output(), delta, &sub_config, &sub_assumptions);
        report.output = output;
        if let Verdict::Violation { vector } = &mut report.verdict {
            *vector = self.widen_cone_vector(view, vector);
        }
        report
    }

    /// The cached sub-session of output cone `pos` (built on first use).
    fn cone_session(&self, pos: usize, ca: &Arc<ConeAnalysis>) -> &Arc<CheckSession<'static>> {
        self.cone_sessions[pos].get_or_init(|| {
            let view = ca.view();
            let prepared = PreparedCircuit::from_handle(
                CircuitHandle::Shared(view.circuit().clone()),
                ca.table.clone(),
            );
            let config = VerifyConfig {
                cone: ConeMode::Off,
                ..self.config.clone()
            };
            let session = CheckSession::with_prepared(prepared, config);
            // Seed the sub base by slicing the whole base fixpoint — NOT by
            // re-running narrowing on the sub-circuit, which would lose the
            // backward pressure out-of-cone learning constants exert on
            // cone nets through fringe gates.
            let domains: Vec<Signal> = view
                .nets()
                .iter()
                .map(|&old| self.base_store().get(old))
                .collect();
            let _ = session.base.set(SignalStore::from_domains(&domains));
            Arc::new(session)
        })
    }

    /// Expands a sub-circuit violation vector (over cone inputs, sub
    /// declaration order) to the whole input list.
    fn widen_cone_vector(&self, view: &ConeView, vector: &[bool]) -> Vec<bool> {
        let sub = view.circuit();
        self.circuit()
            .inputs()
            .iter()
            .map(|&i| match view.net_to_sub(i) {
                Some(m) => {
                    let pos = sub
                        .inputs()
                        .iter()
                        .position(|&x| x == m)
                        .expect("cone input is a sub-circuit input");
                    vector[pos]
                }
                None => fill_level(&self.base_store().get(i)).to_bool(),
            })
            .collect()
    }

    /// Runs the timing check `(output, δ)` through the session's pipeline.
    pub fn verify(&self, output: NetId, delta: i64) -> VerifyReport {
        self.verify_cfg(output, delta, &self.config, &[])
    }

    /// [`CheckSession::verify`] under assumptions: each `(net, level)` pins
    /// a net's settling class before propagation (the `set_case_analysis`
    /// idiom).
    pub fn verify_under(
        &self,
        output: NetId,
        delta: i64,
        assumptions: &[(NetId, Level)],
    ) -> VerifyReport {
        self.verify_cfg(output, delta, &self.config, assumptions)
    }

    /// [`CheckSession::verify`] under an extra [`Budget`] merged
    /// (tightest-wins) with the session config's own — how a batch runner
    /// applies a whole-batch deadline or a fail-fast cancel token to each
    /// check without cloning the session.
    pub fn verify_budgeted(&self, output: NetId, delta: i64, extra: &Budget) -> VerifyReport {
        self.verify_under_budgeted(output, delta, &[], extra)
    }

    /// [`CheckSession::verify_budgeted`] with assumptions (the batch
    /// runner's workhorse).
    pub(crate) fn verify_under_budgeted(
        &self,
        output: NetId,
        delta: i64,
        assumptions: &[(NetId, Level)],
        extra: &Budget,
    ) -> VerifyReport {
        if extra.is_unlimited() {
            return self.verify_cfg(output, delta, &self.config, assumptions);
        }
        let config = VerifyConfig {
            budget: self.config.budget.merged(extra),
            ..self.config.clone()
        };
        self.verify_cfg(output, delta, &config, assumptions)
    }

    /// Finds the exact floating-mode delay of `output` by binary search
    /// over δ, sharing every per-circuit analysis (and the base fixpoint)
    /// across probes. Semantics match [`exact_delay`](crate::exact_delay).
    pub fn exact_delay(&self, output: NetId) -> DelaySearch {
        self.exact_delay_budgeted(output, &Budget::unlimited())
    }

    /// [`CheckSession::exact_delay`] under an extra [`Budget`] merged with
    /// the session's own. A per-check `wall` window applies to each probe
    /// separately; an absolute `deadline` caps the whole search. When the
    /// budget (or the backtrack cap) cuts the bisection short the result
    /// degrades soundly instead of vanishing: `proven_exact` is `false`
    /// and `[delay, upper_bound]` is a certified interval containing the
    /// exact delay — `delay` from the best *simulated* violating vector
    /// (bisection witnesses, then Monte-Carlo), `upper_bound` from the
    /// tightest completed impossibility proof (at worst the topological
    /// bound).
    pub fn exact_delay_budgeted(&self, output: NetId, extra: &Budget) -> DelaySearch {
        let budget = self.config.budget.merged(extra);
        let config = if budget.is_unlimited() {
            self.config.clone()
        } else {
            VerifyConfig {
                budget: budget.clone(),
                ..self.config.clone()
            }
        };
        let top = self.prepared.arrival_times()[output.index()];
        let mut lo = 0i64; // delay ≥ 0 always (inputs settle at 0)
        let mut hi = top + 1; // check at top+1 must fail
        let mut vector = None;
        let mut backtracks: u64 = 0;
        let mut probes = Vec::new();
        let mut decided = true;
        // Invariant: violation possible at lo, impossible at hi.
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            let report = self.verify_cfg(output, mid, &config, &[]);
            backtracks = backtracks.saturating_add(report.backtracks);
            let verdict = report.verdict.clone();
            probes.push(report);
            match verdict {
                crate::Verdict::Violation { vector: v } => {
                    vector = Some(v);
                    lo = mid;
                }
                crate::Verdict::NoViolation { .. } => {
                    hi = mid;
                }
                crate::Verdict::Possible | crate::Verdict::Abandoned => {
                    decided = false;
                    break;
                }
            }
        }
        if !decided {
            // Recover certified bounds around the undecided region.
            //
            // Upper bound: bisect (lo, hi) for the smallest δ that the
            // search-free pipeline (no case analysis) still proves
            // impossible. The same budget applies: once an absolute
            // deadline has passed every fallback probe trips immediately
            // and counts as "not proved", which only leaves the bound
            // looser — never wrong.
            let no_ca = VerifyConfig {
                case_analysis: false,
                ..config.clone()
            };
            let (mut plo, mut phi) = (lo, hi);
            while plo + 1 < phi {
                let mid = plo + (phi - plo) / 2;
                let report = self.verify_cfg(output, mid, &no_ca, &[]);
                // The fallback probes' effort counts like any other probe's.
                backtracks = backtracks.saturating_add(report.backtracks);
                let proved = report.verdict.is_no_violation();
                probes.push(report);
                if proved {
                    phi = mid;
                } else {
                    plo = mid;
                }
            }
            hi = phi;
            // Lower bound: cheap Monte-Carlo simulation — any vector's
            // floating-mode delay is a certified lower bound. Capped by the
            // budget's wall clock (at least one sample always runs, so the
            // bound stays valid even on an expired deadline).
            let sampled = ltt_sta::sampled_floating_delay_until(
                self.prepared.circuit(),
                output,
                2_000,
                0x5EED,
                budget.absolute_deadline(Instant::now()),
            );
            if sampled.delay > lo {
                lo = sampled.delay;
                vector = Some(sampled.witness);
            }
        }
        DelaySearch {
            delay: lo,
            vector,
            proven_exact: decided,
            upper_bound: hi - 1,
            backtracks,
            probes,
        }
    }

    /// Sweeps δ over `deltas` (must be strictly ascending) with one
    /// narrower seeded from the session base, recording per-δ consistency
    /// of narrowing plus (per the session config) dominator implications.
    ///
    /// Unlike the free function [`delay_profile`](crate::delay_profile) —
    /// which always runs plain floating-mode narrowing — this respects the
    /// session's delay mode, learning constants, and `dominators` flag.
    ///
    /// # Panics
    ///
    /// Panics if `deltas` is not strictly ascending.
    pub fn delay_profile(&self, output: NetId, deltas: &[i64]) -> Vec<ProfilePoint> {
        assert!(
            deltas.windows(2).all(|w| w[0] < w[1]),
            "deltas must be strictly ascending"
        );
        self.profile_chunk(output, deltas)
    }

    /// One ascending-δ incremental sweep (no ordering pre-check; used for
    /// the chunks of a parallel profile, where each chunk is ascending).
    pub(crate) fn profile_chunk(&self, output: NetId, deltas: &[i64]) -> Vec<ProfilePoint> {
        let mut nw = self.narrower_at_base();
        let mut profile = Vec::with_capacity(deltas.len());
        let mut refuted = false;
        for &delta in deltas {
            if !refuted {
                nw.narrow_net(output, Signal::violation(Time::new(delta)));
                refuted = fixpoint_with_dominators(&mut nw, output, delta, self.config.dominators)
                    == FixpointResult::Contradiction;
            }
            profile.push(ProfilePoint {
                delta,
                possible: !refuted,
            });
        }
        profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{verify, Verdict};
    use ltt_netlist::generators::{carry_skip_adder, false_path_chain, figure1};

    /// Compile-time guarantee that sessions can be shared across threads.
    fn assert_sync<T: Sync>() {}

    #[test]
    fn prepared_and_session_are_sync() {
        assert_sync::<PreparedCircuit<'static>>();
        assert_sync::<CheckSession<'static>>();
    }

    #[test]
    fn session_matches_free_verify_verdicts() {
        let config = VerifyConfig::default();
        for c in [
            figure1(10),
            false_path_chain(4, 3, 10),
            carry_skip_adder(4, 2, 10),
        ] {
            let session = CheckSession::new(&c, config.clone());
            let top = c.topological_delay();
            for &s in c.outputs() {
                for delta in [top / 2, top, top + 1] {
                    let a = session.verify(s, delta);
                    let b = verify(&c, s, delta, &config);
                    assert_eq!(a.verdict, b.verdict, "{} δ = {delta}", c.name());
                }
            }
        }
    }

    #[test]
    fn analyses_are_shared_not_recomputed() {
        let c = figure1(10);
        let prepared = PreparedCircuit::new(&c, LearningMode::Stems);
        // Pointer identity across calls: the lazy caches hand out the same
        // allocation every time.
        assert!(std::ptr::eq(
            prepared.controllability(),
            prepared.controllability()
        ));
        assert!(std::ptr::eq(
            prepared.stem_candidates().as_ptr(),
            prepared.stem_candidates().as_ptr()
        ));
        let s = c.outputs()[0];
        assert!(std::ptr::eq(
            prepared.distances_to(s).as_ptr(),
            prepared.distances_to(s).as_ptr()
        ));
    }

    #[test]
    fn static_dominators_cover_the_critical_chain() {
        let c = figure1(10);
        let s = c.outputs()[0];
        let prepared = PreparedCircuit::new(&c, LearningMode::Off);
        let names: Vec<&str> = prepared
            .static_dominators(s)
            .iter()
            .map(|&n| c.net(n).name())
            .collect();
        // The unique 70-path is a chain: every net on it dominates.
        assert_eq!(names, vec!["s", "n7", "n6", "n4", "n3", "n2", "n1"]);
    }

    #[test]
    fn session_exact_delay_matches_figure1() {
        let c = figure1(10);
        let s = c.outputs()[0];
        let session = CheckSession::new(&c, VerifyConfig::default());
        let search = session.exact_delay(s);
        assert_eq!(search.delay, 60);
        assert!(search.proven_exact);
        match session.verify(s, 60).verdict {
            Verdict::Violation { ref vector } => {
                assert!(ltt_sta::vector_violates(&c, vector, s, 60));
            }
            ref other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn session_profile_is_monotone() {
        let c = figure1(10);
        let s = c.outputs()[0];
        let session = CheckSession::new(&c, VerifyConfig::default());
        let profile = session.delay_profile(s, &[40, 60, 61, 70]);
        let flags: Vec<bool> = profile.iter().map(|p| p.possible).collect();
        assert_eq!(flags, vec![true, true, false, false]);
    }
}
