//! Case analysis (§5): FAN-adapted waveform splitting with SCOAP-guided
//! multiple backtrace and three decision phases.
//!
//! When the fixpoint leaves the system consistent, we cannot conclude a
//! violation exists; case analysis decides nets — restricting their domains
//! to one *class* at a time — until a test vector is found (all primary
//! inputs class-fixed, certified against the exact floating-mode oracle) or
//! the tree is exhausted (no violation possible).
//!
//! Decision ordering follows the paper's adaptation of FAN:
//!
//! * *objectives* `(k, n₀, n₁)` are raised for the non-carrier side inputs
//!   of gates in the dynamic-carrier circuit Ψ, asking for the value that
//!   keeps Ψ's paths transparent, weighted by the potential path delay they
//!   enable (with **max**, not sum, merged at fanout stems);
//! * objectives are *backtraced* to fanout stems / primary inputs, picking
//!   the hardest input (by SCOAP controllability) where all inputs must be
//!   set and the easiest where one suffices;
//! * decisions run in three phases: (1) cone by cone between consecutive
//!   dynamic dominators, (2) the whole circuit, (3) the output and the
//!   primary inputs;
//! * the backtrace is re-initiated whenever the decision stack shrinks
//!   (each backtrack changes Ψ, the source of the violation).

use crate::carriers::{dynamic_carriers, fixpoint_with_dominators, timing_dominators};
use crate::scoap::Controllability;
use crate::solver::{FixpointResult, Narrower};
use ltt_netlist::{Circuit, NetId};
use ltt_waveform::{Level, Signal};

/// Configuration of the case analysis.
#[derive(Clone, Copy, Debug)]
pub struct CaseConfig {
    /// Give up (result [`CaseOutcome::Abandoned`]) after this many
    /// backtracks — the paper abandons c6288 this way.
    pub max_backtracks: u64,
    /// Keep applying dominator implications inside the search.
    pub use_dominators: bool,
    /// Certify candidate vectors with the exact floating-mode simulator
    /// before reporting them (floating mode only).
    pub certify_vectors: bool,
}

impl Default for CaseConfig {
    fn default() -> Self {
        CaseConfig {
            max_backtracks: 100_000,
            use_dominators: true,
            certify_vectors: true,
        }
    }
}

/// The result of the case analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CaseOutcome {
    /// A test vector violating the timing check (certified).
    Vector(Vec<bool>),
    /// The search tree is exhausted: no violation is possible.
    NoViolation,
    /// A resource limit ran out: the backtrack budget, or any limit of the
    /// narrower's attached [`Budget`](crate::Budget) (wall-clock, events,
    /// cancellation). The search aborts — it never *backtracks* on an
    /// interrupt, which would unsoundly prune un-searched subtrees.
    Abandoned,
}

/// Search-effort counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CaseStats {
    /// Number of backtracks (reversed decisions).
    pub backtracks: u64,
    /// Number of decisions taken.
    pub decisions: u64,
    /// Candidate vectors rejected by the oracle certification.
    pub rejected_candidates: u64,
    /// Decisions per FAN phase: `[0]` cone-by-cone between consecutive
    /// dynamic dominators (phase 1), `[1]` the whole circuit (phase 2),
    /// `[2]` unjustified-gate backtrace plus the output/primary-input
    /// tail (phase 3). Sums to `decisions`.
    pub decisions_by_phase: [u64; 3],
}

impl CaseStats {
    /// Per-field saturating sum (aggregation must never panic).
    pub fn saturating_add(&self, other: &CaseStats) -> CaseStats {
        CaseStats {
            backtracks: self.backtracks.saturating_add(other.backtracks),
            decisions: self.decisions.saturating_add(other.decisions),
            rejected_candidates: self
                .rejected_candidates
                .saturating_add(other.rejected_candidates),
            decisions_by_phase: [
                self.decisions_by_phase[0].saturating_add(other.decisions_by_phase[0]),
                self.decisions_by_phase[1].saturating_add(other.decisions_by_phase[1]),
                self.decisions_by_phase[2].saturating_add(other.decisions_by_phase[2]),
            ],
        }
    }
}

struct Frame {
    mark: crate::domain::Checkpoint,
    net: NetId,
    first: Level,
    tried_both: bool,
}

/// Restriction of the case analysis to a fanin cone, for *masked*
/// cone-scoped checks: decisions, the phase-2 region, the phase-3
/// unjustified scan and the input tail all stay inside the cone, and the
/// backtrace stops at *cone-local* fanout stems (a net with several
/// readers in the whole circuit may have only one inside the cone).
///
/// Out-of-cone primary inputs are not decided: their settling value cannot
/// affect the checked output (the cone is fanin-closed), so reported
/// vectors fill them deterministically from their base domains via
/// [`fill_level`].
pub struct CaseScope {
    /// Cone membership per net (`NetId::index`-indexed).
    pub nets: Vec<bool>,
    /// Cone membership per gate (`GateId::index`-indexed).
    pub gates: Vec<bool>,
    /// The cone's primary inputs, in whole-circuit declaration order.
    pub inputs: Vec<NetId>,
    /// Cone-local fanout-stem flags: `stems[n]` iff net `n` has ≥ 2
    /// readers *inside* the cone.
    pub stems: Vec<bool>,
}

/// The deterministic settling value assigned to a primary input the search
/// never decided (an out-of-cone input of a cone-scoped check): the class
/// whose last-transition interval reaches latest in `domain`, ties to 1 —
/// the same preference order the phase-3 tail uses for its first try.
/// Sliced and masked cone runs use this same rule, so their reported
/// vectors agree bit for bit.
pub fn fill_level(domain: &Signal) -> Level {
    if domain[Level::One].max() >= domain[Level::Zero].max() {
        Level::One
    } else {
        Level::Zero
    }
}

/// Runs the case analysis on an already-propagated narrower.
///
/// Pre-condition: the caller has applied the input/check constraints and
/// run [`fixpoint_with_dominators`] (and optionally stem correlation); the
/// system is consistent.
///
/// Computes the SCOAP controllabilities on the fly; when many checks share
/// one circuit, compute them once and use [`case_analysis_with`] instead.
pub fn case_analysis(
    nw: &mut Narrower,
    s: NetId,
    delta: i64,
    config: &CaseConfig,
    stats: &mut CaseStats,
) -> CaseOutcome {
    let cc = Controllability::compute(nw.circuit());
    case_analysis_with(nw, s, delta, config, stats, &cc)
}

/// [`case_analysis`] with precomputed SCOAP controllabilities (they depend
/// only on the circuit, so a batch of checks shares one table — see
/// [`PreparedCircuit`](crate::PreparedCircuit)). Decisions, and therefore
/// the outcome, are identical to [`case_analysis`].
pub fn case_analysis_with(
    nw: &mut Narrower,
    s: NetId,
    delta: i64,
    config: &CaseConfig,
    stats: &mut CaseStats,
    cc: &Controllability,
) -> CaseOutcome {
    case_analysis_scoped(nw, s, delta, config, stats, cc, None)
}

/// [`case_analysis_with`] restricted to a fanin cone (see [`CaseScope`]);
/// `scope = None` is the unrestricted whole-circuit search.
pub fn case_analysis_scoped(
    nw: &mut Narrower,
    s: NetId,
    delta: i64,
    config: &CaseConfig,
    stats: &mut CaseStats,
    cc: &Controllability,
    scope: Option<&CaseScope>,
) -> CaseOutcome {
    let circuit = nw.circuit();
    let plan = DecisionPlan::new(circuit, nw.domains(), s, delta, scope);
    // Every live frame fixes the class of a distinct net, and decisions
    // only ever land on fanout stems, primary inputs, or the checked
    // output (backtrace stops there) — so the stack depth is bounded by
    // their count. Preallocate once instead of growing mid-search.
    let depth_bound = 1
        + circuit.inputs().len()
        + circuit
            .net_ids()
            .filter(|&n| circuit.net(n).is_fanout_stem())
            .count();
    let mut stack: Vec<Frame> = Vec::with_capacity(depth_bound);
    // The narrower's budget can carry its own backtrack cap; the effective
    // cap is the tighter of the two.
    let budget_cap = nw.budget_mut().budget().max_backtracks();
    let max_backtracks = budget_cap.map_or(config.max_backtracks, |b| b.min(config.max_backtracks));

    loop {
        // Cooperative cancellation point, once per search step. On a trip
        // the search *aborts*: treating an interrupt as a conflict would
        // backtrack past unexplored subtrees and could wrongly conclude
        // `NoViolation`.
        if nw.budget_mut().poll_now().is_some() {
            return CaseOutcome::Abandoned;
        }
        let consistent = if nw.has_contradiction() {
            false
        } else {
            match fixpoint_with_dominators(nw, s, delta, config.use_dominators) {
                FixpointResult::Fixpoint => true,
                FixpointResult::Contradiction => false,
                FixpointResult::Interrupted => return CaseOutcome::Abandoned,
            }
        };

        if consistent {
            if let Some(vector) = full_input_assignment(circuit, nw.domains(), scope) {
                let ok =
                    !config.certify_vectors || ltt_sta::vector_violates(circuit, &vector, s, delta);
                if ok {
                    return CaseOutcome::Vector(vector);
                }
                stats.rejected_candidates += 1;
                // Fall through to backtracking: this complete assignment
                // does not actually violate the check.
            } else {
                // Decide the next net.
                let (net, level, phase) = choose_decision(nw, &plan, cc, s, delta, scope)
                    .expect("an unfixed primary input exists");
                stats.decisions += 1;
                stats.decisions_by_phase[phase as usize] += 1;
                let mark = nw.checkpoint();
                let restriction = nw.domain(net).restrict_to_class(level);
                nw.narrow_net(net, restriction);
                stack.push(Frame {
                    mark,
                    net,
                    first: level,
                    tried_both: false,
                });
                continue;
            }
        }

        // Conflict (or rejected candidate): backtrack.
        loop {
            let Some(mut frame) = stack.pop() else {
                return CaseOutcome::NoViolation;
            };
            nw.rollback(frame.mark);
            if frame.tried_both {
                continue; // exhausted: keep popping
            }
            stats.backtracks += 1;
            if stats.backtracks > max_backtracks {
                // Remember *why* when the budget (not the search config)
                // supplied the binding cap, so the report's completeness
                // marker names the right trip.
                if budget_cap.is_some_and(|b| b <= config.max_backtracks) {
                    nw.budget_mut().trip(crate::budget::TripReason::Backtracks);
                }
                return CaseOutcome::Abandoned;
            }
            let second = !frame.first;
            let restriction = nw.domain(frame.net).restrict_to_class(second);
            frame.mark = nw.checkpoint();
            nw.narrow_net(frame.net, restriction);
            frame.tried_both = true;
            stack.push(frame);
            break;
        }
    }
}

/// If every decidable primary input has a fixed class, the corresponding
/// full-length vector. Under a [`CaseScope`] only the cone inputs must be
/// class-fixed; out-of-cone inputs — whose value cannot affect the checked
/// output — are filled deterministically from their (untouched, base)
/// domains via [`fill_level`].
fn full_input_assignment(
    circuit: &Circuit,
    domains: &[Signal],
    scope: Option<&CaseScope>,
) -> Option<Vec<bool>> {
    match scope {
        None => circuit
            .inputs()
            .iter()
            .map(|&i| domains[i.index()].fixed_class().map(Level::to_bool))
            .collect(),
        Some(scope) => circuit
            .inputs()
            .iter()
            .map(|&i| {
                if scope.nets[i.index()] {
                    domains[i.index()].fixed_class().map(Level::to_bool)
                } else {
                    Some(fill_level(&domains[i.index()]).to_bool())
                }
            })
            .collect(),
    }
}

/// The three-phase decision plan (computed once, before any decision).
struct DecisionPlan {
    /// Phase-1 regions: nets of the cone of `d_i` excluding the cone of
    /// `d_{i+1}`, for the initial dominator chain `d_0 = s, d_1, …`.
    regions: Vec<Vec<bool>>,
    /// Phase-3 list: the output then the primary inputs.
    tail: Vec<NetId>,
}

impl DecisionPlan {
    fn new(
        circuit: &Circuit,
        domains: &[Signal],
        s: NetId,
        delta: i64,
        scope: Option<&CaseScope>,
    ) -> DecisionPlan {
        let carriers = dynamic_carriers(circuit, domains, s, delta);
        let doms = timing_dominators(circuit, &carriers, s);
        let mut regions = Vec::new();
        for w in doms.windows(2) {
            let (di, di1) = (w[0], w[1]);
            let cone_i = circuit.fanin_cone(di);
            let cone_i1 = circuit.fanin_cone(di1);
            let region: Vec<bool> = cone_i
                .iter()
                .zip(&cone_i1)
                .map(|(&a, &b)| a && !b)
                .collect();
            regions.push(region);
        }
        if let Some(&last) = doms.last() {
            regions.push(circuit.fanin_cone(last));
        }
        // Phase 2: the whole circuit — or, cone-scoped, the whole cone
        // (its sliced twin's "whole circuit" *is* the cone).
        regions.push(match scope {
            Some(scope) => scope.nets.clone(),
            None => vec![true; circuit.num_nets()],
        });
        let mut tail = vec![s];
        match scope {
            Some(scope) => tail.extend_from_slice(&scope.inputs),
            None => tail.extend_from_slice(circuit.inputs()),
        }
        DecisionPlan { regions, tail }
    }
}

/// Picks the next decision: phase 1/2 via objective backtrace inside the
/// planned regions, phase 3 over output + primary inputs, final fallback
/// any unfixed primary input. The returned index (0, 1 or 2) names the
/// FAN phase that produced the decision, for the per-phase counters in
/// [`CaseStats::decisions_by_phase`].
fn choose_decision(
    nw: &Narrower,
    plan: &DecisionPlan,
    cc: &Controllability,
    s: NetId,
    delta: i64,
    scope: Option<&CaseScope>,
) -> Option<(NetId, Level, u8)> {
    let circuit = nw.circuit();
    let stems = scope.map(|sc| sc.stems.as_slice());
    // Phases 1 and 2: objectives from the *current* dynamic-carrier circuit,
    // backtraced to stems/inputs, restricted to each region in turn. The
    // final region is the whole circuit — that is FAN phase 2; the
    // dominator-cone regions before it are phase 1.
    let objectives = raise_objectives(nw, s, delta);
    for (ri, region) in plan.regions.iter().enumerate() {
        let mut best: Option<(i64, u32, NetId, Level)> = None;
        for &(net, level, weight) in &objectives {
            let Some((target, value)) = backtrace(circuit, nw.domains(), cc, net, level, stems)
            else {
                continue;
            };
            if !region[target.index()] || nw.domain(target).fixed_class().is_some() {
                continue;
            }
            let tie = cc.of(target, value);
            let cand = (weight, tie, target, value);
            if best.is_none_or(|b| (cand.0, cand.1) > (b.0, b.1)) {
                best = Some(cand);
            }
        }
        if let Some((_, _, net, level)) = best {
            let phase = if ri + 1 == plan.regions.len() { 1 } else { 0 };
            return Some((net, level, phase));
        }
    }
    // Phase 3: the output, then the primary inputs — reached by complete
    // backtrace from *unjustified* gate outputs (§5: a class-fixed output
    // whose inputs can still take a class combination inconsistent with
    // the gate constraint), falling back to direct input decisions.
    for gid in circuit.gate_ids() {
        if let Some(sc) = scope {
            if !sc.gates[gid.index()] {
                continue;
            }
        }
        let Some(out_class) = nw.domain(circuit.gate(gid).output()).fixed_class() else {
            continue;
        };
        if !is_unjustified(nw, gid) {
            continue;
        }
        // Backtrace the justification objective (output = its fixed class)
        // to a stem or primary input.
        if let Some((target, value)) = backtrace(
            circuit,
            nw.domains(),
            cc,
            circuit.gate(gid).output(),
            out_class,
            stems,
        ) {
            if nw.domain(target).fixed_class().is_none() {
                return Some((target, value, 2));
            }
        }
    }
    for &net in &plan.tail {
        if nw.domain(net).fixed_class().is_none() {
            // Prefer the class that keeps the check satisfiable: the one
            // whose last-transition interval reaches latest.
            let d = nw.domain(net);
            let level = if d[Level::One].max() >= d[Level::Zero].max() {
                Level::One
            } else {
                Level::Zero
            };
            return Some((net, level, 2));
        }
    }
    None
}

/// The paper's §5 *unjustified* test: the gate's output is restricted to
/// one class, yet some class combination still allowed on the inputs is
/// inconsistent with the gate constraint — so decisions below this gate
/// are still needed.
fn is_unjustified(nw: &Narrower, gid: ltt_netlist::GateId) -> bool {
    let circuit = nw.circuit();
    let gate = circuit.gate(gid);
    let output = nw.domain(gate.output());
    let Some(out_class) = output.fixed_class() else {
        return false;
    };
    let input_domains: Vec<_> = gate.inputs().iter().map(|&n| nw.domain(n)).collect();
    let k = input_domains.len();
    if k > 8 {
        return false; // combinational blow-up guard
    }
    for combo in 0u32..(1 << k) {
        let classes: Vec<Level> = (0..k)
            .map(|i| Level::from_bool((combo >> i) & 1 == 1))
            .collect();
        if classes
            .iter()
            .zip(&input_domains)
            .any(|(&v, d)| d[v].is_empty())
        {
            continue; // combo not allowed by the current domains
        }
        let vals: Vec<bool> = classes.iter().map(|v| v.to_bool()).collect();
        if Level::from_bool(gate.kind().eval(&vals)) != out_class {
            return true; // an allowed combo contradicts the fixed output
        }
    }
    false
}

/// Initial objectives (§5): for every gate driving a dynamic carrier, each
/// non-carrier, class-unfixed input should take the non-controlling value
/// of that gate (to keep Ψ's paths transparent). Objectives are the
/// paper's triplets `(k, n₀(k), n₁(k))`: per net `k`, `n_v` is the largest
/// path delay potentially enabled by setting `k` to `v` — merged with
/// **max** (not sum) at fanout stems, the paper's modification of FAN.
fn raise_objectives(nw: &Narrower, s: NetId, delta: i64) -> Vec<(NetId, Level, i64)> {
    let circuit = nw.circuit();
    let carriers = dynamic_carriers(circuit, nw.domains(), s, delta);
    // n[net][value] = best enabled path delay when net settles to value.
    let mut n: Vec<[i64; 2]> = vec![[i64::MIN; 2]; circuit.num_nets()];
    for gid in circuit.gate_ids() {
        let gate = circuit.gate(gid);
        let out = gate.output();
        let Some(k) = carriers[out.index()] else {
            continue;
        };
        let Some(ctrl) = gate.kind().controlling_value() else {
            continue; // XOR/unary gates are always transparent
        };
        let nc = !Level::from_bool(ctrl);
        let weight = k + i64::from(gate.dmax());
        for &x in gate.inputs() {
            if carriers[x.index()].is_some() {
                continue; // carriers are path candidates, not side inputs
            }
            if nw.domain(x).fixed_class().is_some() {
                continue;
            }
            // Fanout: max-merge into the nc-value slot.
            let slot = &mut n[x.index()][nc.index()];
            *slot = (*slot).max(weight);
        }
    }
    n.iter()
        .enumerate()
        .filter_map(|(i, vals)| {
            // The objective value is the better of n₀/n₁; ties break to 1
            // (keeping AND-family paths transparent first).
            let (v, w) = if vals[1] >= vals[0] {
                (Level::One, vals[1])
            } else {
                (Level::Zero, vals[0])
            };
            (w > i64::MIN).then(|| (NetId::from_index(i), v, w))
        })
        .collect()
}

/// FAN-style backtrace of one objective `(net, value)` to a fanout stem or
/// primary input: where the objective requires all inputs, follow the
/// hardest (max SCOAP); where one input suffices, follow the easiest.
/// `stems` overrides the fanout-stem stop test (cone-local reader counts
/// for masked cone runs); `None` uses the circuit's own stem flags.
fn backtrace(
    circuit: &Circuit,
    domains: &[Signal],
    cc: &Controllability,
    mut net: NetId,
    mut value: Level,
    stems: Option<&[bool]>,
) -> Option<(NetId, Level)> {
    for _ in 0..circuit.num_nets() {
        match domains[net.index()].fixed_class() {
            Some(v) if v == value => return None, // already satisfied
            Some(_) => return None,               // unachievable here
            None => {}
        }
        let Some(driver) = circuit.net(net).driver() else {
            return Some((net, value)); // reached a primary input
        };
        let is_stem = match stems {
            Some(flags) => flags[net.index()],
            None => circuit.net(net).is_fanout_stem(),
        };
        if is_stem {
            return Some((net, value)); // stop at stems (head lines)
        }
        let gate = circuit.gate(driver);
        let kind = gate.kind();
        let inputs = gate.inputs();
        match kind.controlling_value() {
            Some(c) => {
                let c = Level::from_bool(c);
                let out_c = Level::from_bool(kind.controlled_output().expect("ctrl"));
                if value == out_c {
                    // One controlling input suffices: easiest.
                    let pick = inputs
                        .iter()
                        .copied()
                        .filter(|i| domains[i.index()].fixed_class() != Some(!c))
                        .min_by_key(|&i| cc.of(i, c))?;
                    net = pick;
                    value = c;
                } else {
                    // All inputs must be non-controlling: hardest first.
                    let pick = inputs
                        .iter()
                        .copied()
                        .filter(|i| domains[i.index()].fixed_class() != Some(c))
                        .max_by_key(|&i| cc.of(i, !c))
                        .or_else(|| inputs.first().copied())?;
                    net = pick;
                    value = !c;
                }
            }
            None => {
                // Unary / XOR / MUX: follow the (single or easiest) input.
                if inputs.len() == 1 {
                    net = inputs[0];
                    value = if kind.inverts() { !value } else { value };
                } else if kind == ltt_netlist::GateKind::Mux {
                    // MUX(sel, a, b) = value: route through the cheaper of
                    // (sel=0, a=value) and (sel=1, b=value), descending into
                    // its data input.
                    let cost0 = cc
                        .of(inputs[0], Level::Zero)
                        .saturating_add(cc.of(inputs[1], value));
                    let cost1 = cc
                        .of(inputs[0], Level::One)
                        .saturating_add(cc.of(inputs[2], value));
                    net = if cost0 <= cost1 { inputs[1] } else { inputs[2] };
                    // value unchanged: the data input must produce it.
                } else {
                    // XOR family: choose the easiest input to flip; require
                    // its value to make the parity work out with the others
                    // at 0.
                    let pick = inputs
                        .iter()
                        .copied()
                        .min_by_key(|&i| cc.of(i, Level::One).min(cc.of(i, Level::Zero)))?;
                    let others_parity = false; // assume others settle 0
                    let pol = kind.inverts();
                    let want = value.to_bool() ^ others_parity ^ pol;
                    net = pick;
                    value = Level::from_bool(want);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltt_netlist::generators::{cascade, false_path_chain, figure1};
    use ltt_netlist::GateKind;
    use ltt_waveform::Time;

    fn setup<'a>(c: &'a Circuit, s: NetId, delta: i64) -> Narrower<'a> {
        let mut nw = Narrower::new(c);
        for &i in c.inputs() {
            nw.narrow_net(i, Signal::floating_input());
        }
        nw.narrow_net(s, Signal::violation(Time::new(delta)));
        nw
    }

    #[test]
    fn finds_vector_on_cascade_at_top() {
        let c = cascade(GateKind::And, 4, 10);
        let s = c.outputs()[0];
        let mut nw = setup(&c, s, 40);
        assert_eq!(
            fixpoint_with_dominators(&mut nw, s, 40, true),
            FixpointResult::Fixpoint
        );
        let mut stats = CaseStats::default();
        let out = case_analysis(&mut nw, s, 40, &CaseConfig::default(), &mut stats);
        match out {
            CaseOutcome::Vector(v) => {
                assert!(ltt_sta::vector_violates(&c, &v, s, 40));
            }
            other => panic!("expected vector, got {other:?}"),
        }
    }

    #[test]
    fn proves_no_violation_past_top() {
        let c = cascade(GateKind::And, 4, 10);
        let s = c.outputs()[0];
        let mut nw = setup(&c, s, 41);
        // Narrowing alone should already kill this; case analysis must
        // agree even if asked.
        if fixpoint_with_dominators(&mut nw, s, 41, true) == FixpointResult::Fixpoint {
            let mut stats = CaseStats::default();
            let out = case_analysis(&mut nw, s, 41, &CaseConfig::default(), &mut stats);
            assert_eq!(out, CaseOutcome::NoViolation);
        }
    }

    #[test]
    fn figure1_finds_vector_at_60() {
        let c = figure1(10);
        let s = c.outputs()[0];
        let mut nw = setup(&c, s, 60);
        assert_eq!(
            fixpoint_with_dominators(&mut nw, s, 60, true),
            FixpointResult::Fixpoint
        );
        let mut stats = CaseStats::default();
        let out = case_analysis(&mut nw, s, 60, &CaseConfig::default(), &mut stats);
        match out {
            CaseOutcome::Vector(v) => assert!(ltt_sta::vector_violates(&c, &v, s, 60)),
            other => panic!("expected vector, got {other:?}"),
        }
    }

    #[test]
    fn false_path_chain_exact_delay_bracketing() {
        // For several (p, q): vector at (p+2)·10, no violation at
        // (p+2)·10 + 1 — with the oracle agreeing.
        for (p, q) in [(3usize, 2usize), (5, 3), (6, 4)] {
            let c = false_path_chain(p, q, 10);
            let s = c.outputs()[0];
            let exact = 10 * (p as i64 + 2);
            // δ = exact: violation.
            let mut nw = setup(&c, s, exact);
            let r = fixpoint_with_dominators(&mut nw, s, exact, true);
            assert_eq!(r, FixpointResult::Fixpoint, "({p},{q}) at exact");
            let mut stats = CaseStats::default();
            let out = case_analysis(&mut nw, s, exact, &CaseConfig::default(), &mut stats);
            assert!(
                matches!(out, CaseOutcome::Vector(_)),
                "({p},{q}) expected vector, got {out:?} after {} backtracks",
                stats.backtracks
            );
            // δ = exact + 1: no violation (whether by narrowing or search).
            let mut nw = setup(&c, s, exact + 1);
            if fixpoint_with_dominators(&mut nw, s, exact + 1, true) == FixpointResult::Fixpoint {
                let mut stats = CaseStats::default();
                let out = case_analysis(&mut nw, s, exact + 1, &CaseConfig::default(), &mut stats);
                assert_eq!(out, CaseOutcome::NoViolation, "({p},{q}) at exact+1");
            }
        }
    }

    #[test]
    fn abandons_at_backtrack_budget() {
        let c = false_path_chain(6, 4, 10);
        let s = c.outputs()[0];
        // An unsatisfiable-but-hard check with a zero budget abandons as
        // soon as one backtrack is needed.
        let mut nw = setup(&c, s, 75);
        if fixpoint_with_dominators(&mut nw, s, 75, true) == FixpointResult::Fixpoint {
            let cfg = CaseConfig {
                max_backtracks: 0,
                ..Default::default()
            };
            let mut stats = CaseStats::default();
            let out = case_analysis(&mut nw, s, 75, &cfg, &mut stats);
            // Either it decides without backtracking or it abandons.
            assert!(matches!(
                out,
                CaseOutcome::Abandoned | CaseOutcome::NoViolation | CaseOutcome::Vector(_)
            ));
        }
    }
}
