//! Deterministic parallel execution of check batches.
//!
//! A timing workload is almost always a *batch*: every output at one δ
//! ([`BatchRunner::verify_all_outputs`]), the O(log top) probes of a delay
//! search ([`BatchRunner::exact_delays`]), the δ sweep of a profile
//! ([`BatchRunner::delay_profile`]), or a whole benchmark suite. Each check
//! in a batch is a **pure function** of `(circuit, config, output, δ)`
//! once it runs against a shared [`CheckSession`]: the session's prepared
//! analyses and base fixpoint are read-only, every check gets its own
//! [`Narrower`](crate::solver::Narrower), and the greatest fixpoint it
//! computes is unique. Running checks concurrently therefore cannot change
//! any verdict, witness vector, or per-check counter — only the wall-clock.
//!
//! The executor is a work-stealing map over scoped threads: workers pull
//! the next item index from one shared atomic counter (natural load
//! balancing — an expensive case-analysis check occupies one worker while
//! the others drain the cheap checks), tag every result with its input
//! index, and the merged results are sorted back into **input order**, so
//! the output is bit-identical to the serial run regardless of thread
//! count or scheduling.

use crate::check::{DelaySearch, ProfilePoint, StageTimes, Verdict, VerifyReport};
use crate::fan::CaseStats;
use crate::prepared::CheckSession;
use crate::solver::SolverStats;
use crate::stems::StemStats;
use ltt_netlist::NetId;
use ltt_waveform::Level;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// The number of worker threads an *auto* runner uses: the machine's
/// available parallelism, or 1 if it cannot be determined.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Work-stealing parallel map preserving input order.
///
/// Spawns `jobs` scoped workers that pull indices from a shared atomic
/// counter, collects `(index, result)` pairs per worker, and sorts the
/// merged results by index. With `jobs <= 1` (or one item) it degenerates
/// to a plain serial map with no thread machinery at all.
fn run_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.clamp(1, items.len().max(1));
    if jobs <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut part = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        part.push((i, f(item)));
                    }
                    part
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(part) => indexed.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Collapsed verdict of a whole batch (the Table 1 row semantics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchOutcome {
    /// Every check proved `N`: no violation on any checked output.
    AllSafe,
    /// At least one check produced a violating vector (`V`).
    Violation,
    /// No violation found, but at least one check stayed inconclusive or
    /// was abandoned (`A`).
    Undecided,
}

/// Saturating aggregate of a batch's per-check reports.
#[derive(Clone, Debug, Default)]
pub struct BatchSummary {
    /// Checks in the batch.
    pub checks: u64,
    /// Checks proved safe.
    pub no_violation: u64,
    /// Checks with a violating vector.
    pub violations: u64,
    /// Checks left `Possible` or `Abandoned`.
    pub undecided: u64,
    /// Case-analysis backtracks, summed.
    pub backtracks: u64,
    /// Solver effort counters, summed.
    pub solver: SolverStats,
    /// Stem-correlation counters, summed.
    pub stems: StemStats,
    /// Case-analysis counters, summed.
    pub case: CaseStats,
    /// Per-stage wall-clock, summed over checks (CPU-time-like: with N
    /// workers this exceeds the batch wall-clock by up to a factor N).
    pub stage_wall: StageTimes,
    /// Total per-check wall-clock (same CPU-time-like caveat).
    pub check_wall: Duration,
}

impl BatchSummary {
    /// Aggregates the reports with saturating arithmetic (a batch summary
    /// must never panic on pathological counter values).
    pub fn aggregate(reports: &[VerifyReport]) -> Self {
        let mut sum = BatchSummary::default();
        for r in reports {
            sum.checks = sum.checks.saturating_add(1);
            match &r.verdict {
                Verdict::NoViolation { .. } => {
                    sum.no_violation = sum.no_violation.saturating_add(1);
                }
                Verdict::Violation { .. } => {
                    sum.violations = sum.violations.saturating_add(1);
                }
                Verdict::Possible | Verdict::Abandoned => {
                    sum.undecided = sum.undecided.saturating_add(1);
                }
            }
            sum.backtracks = sum.backtracks.saturating_add(r.backtracks);
            sum.solver.events = sum.solver.events.saturating_add(r.solver.events);
            sum.solver.narrowings = sum.solver.narrowings.saturating_add(r.solver.narrowings);
            sum.solver.learned_applications = sum
                .solver
                .learned_applications
                .saturating_add(r.solver.learned_applications);
            sum.stems.stems = sum.stems.stems.saturating_add(r.stems.stems);
            sum.stems.effective_stems = sum
                .stems
                .effective_stems
                .saturating_add(r.stems.effective_stems);
            sum.stems.dead_branches = sum
                .stems
                .dead_branches
                .saturating_add(r.stems.dead_branches);
            sum.case.backtracks = sum.case.backtracks.saturating_add(r.case.backtracks);
            sum.case.decisions = sum.case.decisions.saturating_add(r.case.decisions);
            sum.case.rejected_candidates = sum
                .case
                .rejected_candidates
                .saturating_add(r.case.rejected_candidates);
            sum.stage_wall = sum.stage_wall.saturating_add(&r.stage_times);
            sum.check_wall = sum.check_wall.saturating_add(r.elapsed);
        }
        sum
    }
}

/// Result of one batch: per-check reports in **input order** plus the
/// aggregate summary and the batch wall-clock.
#[derive(Clone, Debug)]
pub struct BatchCheck {
    /// One report per requested check, in the order requested.
    pub reports: Vec<VerifyReport>,
    /// Saturating aggregate over `reports`.
    pub summary: BatchSummary,
    /// Wall-clock of the whole batch (the number parallelism improves).
    pub wall: Duration,
}

impl BatchCheck {
    /// The collapsed verdict: `Violation` beats `Undecided` beats
    /// `AllSafe`.
    pub fn outcome(&self) -> BatchOutcome {
        if self.summary.violations > 0 {
            BatchOutcome::Violation
        } else if self.summary.undecided > 0 {
            BatchOutcome::Undecided
        } else {
            BatchOutcome::AllSafe
        }
    }
}

/// Fans the checks of a batch out over worker threads.
///
/// Deterministic by construction (see the module docs): any `jobs` value
/// produces the same reports as [`BatchRunner::serial`].
///
/// # Examples
///
/// ```
/// use ltt_core::{BatchOutcome, BatchRunner, CheckSession, VerifyConfig};
/// use ltt_netlist::suite::c17;
///
/// let c = c17(10);
/// let session = CheckSession::new(&c, VerifyConfig::default());
/// let runner = BatchRunner::auto();
/// let batch = runner.verify_all_outputs(&session, 31);
/// assert_eq!(batch.outcome(), BatchOutcome::AllSafe);
/// let batch = runner.verify_all_outputs(&session, 30);
/// assert_eq!(batch.outcome(), BatchOutcome::Violation);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchRunner {
    jobs: usize,
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner::auto()
    }
}

impl BatchRunner {
    /// A runner with `jobs` workers; `0` means *auto* (one worker per
    /// available hardware thread).
    pub fn new(jobs: usize) -> Self {
        BatchRunner {
            jobs: if jobs == 0 { available_jobs() } else { jobs },
        }
    }

    /// The single-threaded runner (no thread machinery at all).
    pub fn serial() -> Self {
        BatchRunner { jobs: 1 }
    }

    /// One worker per available hardware thread.
    pub fn auto() -> Self {
        BatchRunner::new(0)
    }

    /// The worker count this runner uses.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs the checks `(output, δ)` against the session, in parallel.
    pub fn run(&self, session: &CheckSession, checks: &[(NetId, i64)]) -> BatchCheck {
        self.run_under(session, checks, &[])
    }

    /// [`BatchRunner::run`] with shared assumptions: every check pins each
    /// `(net, level)` before propagation.
    pub fn run_under(
        &self,
        session: &CheckSession,
        checks: &[(NetId, i64)],
        assumptions: &[(NetId, Level)],
    ) -> BatchCheck {
        let start = Instant::now();
        // Force the base fixpoint once before fan-out so workers never race
        // to compute it (OnceLock would serialize them anyway; this keeps
        // the cost out of the parallel region's critical path).
        session.warm_up();
        let reports = run_map(checks, self.jobs, |&(output, delta)| {
            session.verify_under(output, delta, assumptions)
        });
        let summary = BatchSummary::aggregate(&reports);
        BatchCheck {
            reports,
            summary,
            wall: start.elapsed(),
        }
    }

    /// Checks one δ against **every** primary output of the session's
    /// circuit (the Table 1 semantics: `N` only if no output can violate).
    pub fn verify_all_outputs(&self, session: &CheckSession, delta: i64) -> BatchCheck {
        let checks: Vec<(NetId, i64)> = session
            .circuit()
            .outputs()
            .iter()
            .map(|&o| (o, delta))
            .collect();
        self.run(session, &checks)
    }

    /// Runs [`CheckSession::exact_delay`] for every primary output, in
    /// parallel. Results are in output-declaration order.
    pub fn exact_delays(&self, session: &CheckSession) -> Vec<DelaySearch> {
        session.warm_up();
        run_map(session.circuit().outputs(), self.jobs, |&o| {
            session.exact_delay(o)
        })
    }

    /// [`CheckSession::delay_profile`], parallelized by splitting the
    /// (ascending) δ axis into one contiguous chunk per worker. Each chunk
    /// runs its own incremental sweep from the session base; because each
    /// δ's consistency is a pure function of `(base, δ)` the concatenation
    /// is identical to the serial sweep.
    ///
    /// # Panics
    ///
    /// Panics if `deltas` is not strictly ascending.
    pub fn delay_profile(
        &self,
        session: &CheckSession,
        output: NetId,
        deltas: &[i64],
    ) -> Vec<ProfilePoint> {
        assert!(
            deltas.windows(2).all(|w| w[0] < w[1]),
            "deltas must be strictly ascending"
        );
        if self.jobs <= 1 || deltas.len() <= 1 {
            return session.delay_profile(output, deltas);
        }
        session.warm_up();
        let chunk = deltas.len().div_ceil(self.jobs);
        let chunks: Vec<&[i64]> = deltas.chunks(chunk).collect();
        run_map(&chunks, self.jobs, |&c| session.profile_chunk(output, c))
            .into_iter()
            .flatten()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::VerifyConfig;
    use ltt_netlist::generators::{carry_skip_adder, figure1};
    use ltt_netlist::suite::c17;

    #[test]
    fn run_map_preserves_order_and_covers_all_items() {
        let items: Vec<usize> = (0..97).collect();
        for jobs in [1, 2, 3, 8, 200] {
            let out = run_map(&items, jobs, |&x| x * 2);
            assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_map_propagates_panics() {
        let items = vec![1, 2, 3];
        let result = std::panic::catch_unwind(|| {
            run_map(&items, 2, |&x| {
                if x == 2 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn jobs_zero_means_auto() {
        assert_eq!(BatchRunner::new(0).jobs(), available_jobs());
        assert_eq!(BatchRunner::new(3).jobs(), 3);
        assert_eq!(BatchRunner::serial().jobs(), 1);
    }

    #[test]
    fn parallel_batch_matches_serial_reports() {
        let c = c17(10);
        let session = CheckSession::new(&c, VerifyConfig::default());
        for delta in [25, 30, 31] {
            let serial = BatchRunner::serial().verify_all_outputs(&session, delta);
            let par = BatchRunner::new(4).verify_all_outputs(&session, delta);
            assert_eq!(serial.reports.len(), par.reports.len());
            for (a, b) in serial.reports.iter().zip(&par.reports) {
                assert_eq!(a.output, b.output);
                assert_eq!(a.verdict, b.verdict);
                assert_eq!(a.before_gitd, b.before_gitd);
                assert_eq!(a.after_gitd, b.after_gitd);
                assert_eq!(a.after_stems, b.after_stems);
                assert_eq!(a.backtracks, b.backtracks);
                assert_eq!(a.solver, b.solver);
            }
            assert_eq!(serial.outcome(), par.outcome());
        }
    }

    #[test]
    fn summary_counts_add_up() {
        let c = c17(10);
        let session = CheckSession::new(&c, VerifyConfig::default());
        let batch = BatchRunner::new(2).verify_all_outputs(&session, 30);
        let s = &batch.summary;
        assert_eq!(s.checks, batch.reports.len() as u64);
        assert_eq!(s.checks, s.no_violation + s.violations + s.undecided);
        assert!(s.violations > 0);
        assert!(s.check_wall >= s.stage_wall.total() || s.checks == 0);
    }

    #[test]
    fn parallel_profile_matches_serial() {
        let c = figure1(10);
        let s = c.outputs()[0];
        let session = CheckSession::new(&c, VerifyConfig::default());
        let deltas: Vec<i64> = (0..=70).step_by(5).collect();
        let serial = BatchRunner::serial().delay_profile(&session, s, &deltas);
        for jobs in [2, 3, 16] {
            let par = BatchRunner::new(jobs).delay_profile(&session, s, &deltas);
            assert_eq!(serial, par, "jobs = {jobs}");
        }
    }

    #[test]
    fn parallel_exact_delays_match_serial() {
        let c = carry_skip_adder(4, 2, 10);
        let session = CheckSession::new(&c, VerifyConfig::default());
        let serial = BatchRunner::serial().exact_delays(&session);
        let par = BatchRunner::new(4).exact_delays(&session);
        assert_eq!(serial.len(), par.len());
        for (a, b) in serial.iter().zip(&par) {
            assert_eq!(a.delay, b.delay);
            assert_eq!(a.proven_exact, b.proven_exact);
            assert_eq!(a.upper_bound, b.upper_bound);
            assert_eq!(a.vector, b.vector);
            assert_eq!(a.backtracks, b.backtracks);
        }
    }
}
