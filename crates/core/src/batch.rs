//! Deterministic parallel execution of check batches.
//!
//! A timing workload is almost always a *batch*: every output at one δ
//! ([`BatchRunner::verify_all_outputs`]), the O(log top) probes of a delay
//! search ([`BatchRunner::exact_delays`]), the δ sweep of a profile
//! ([`BatchRunner::delay_profile`]), or a whole benchmark suite. Each check
//! in a batch is a **pure function** of `(circuit, config, output, δ)`
//! once it runs against a shared [`CheckSession`]: the session's prepared
//! analyses and base fixpoint are read-only, every check gets its own
//! [`Narrower`](crate::solver::Narrower), and the greatest fixpoint it
//! computes is unique. Running checks concurrently therefore cannot change
//! any verdict, witness vector, or per-check counter — only the wall-clock.
//!
//! The executor is a work-stealing map over scoped threads: workers pull
//! the next item index from one shared atomic counter (natural load
//! balancing — an expensive case-analysis check occupies one worker while
//! the others drain the cheap checks), tag every result with its input
//! index, and the merged results are sorted back into **input order**, so
//! the output is bit-identical to the serial run regardless of thread
//! count or scheduling.
//!
//! The executor is also **fault-isolated**: each check runs under
//! [`catch_unwind`](std::panic::catch_unwind), so a panicking check becomes
//! a structured [`CheckError`] in its slot of [`BatchCheck::errors`] while
//! every other check completes normally — with reports bit-identical to a
//! batch that never contained the poisoned check. Two opt-in controls trade
//! this determinism for latency: [`BatchRunner::with_fail_fast`] cancels
//! outstanding checks as soon as one violation is found, and
//! [`BatchRunner::with_deadline`] bounds the whole batch's wall-clock
//! (in-flight checks degrade to [`Verdict::Abandoned`] with a
//! [`Completeness::BudgetExhausted`](crate::Completeness) marker; not-yet-
//! started checks become [`CheckError::Skipped`]).

use crate::budget::{Budget, CancelToken};
use crate::check::{DelaySearch, ProfilePoint, StageTimes, Verdict, VerifyReport};
use crate::error::CheckError;
use crate::fan::CaseStats;
use crate::prepared::CheckSession;
use crate::solver::SolverStats;
use crate::stems::StemStats;
use ltt_netlist::NetId;
use ltt_waveform::Level;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// The number of worker threads an *auto* runner uses: the machine's
/// available parallelism, or 1 if it cannot be determined.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Renders a caught panic payload as a message (the common `String` /
/// `&str` payloads verbatim, anything else a placeholder).
fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

/// Work-stealing, fault-isolated parallel map preserving input order.
///
/// Spawns `jobs` scoped workers that pull indices from a shared atomic
/// counter, collects `(index, result)` pairs per worker, and sorts the
/// merged results by index. With `jobs <= 1` (or one item) it degenerates
/// to a plain serial map with no thread machinery at all.
///
/// Every slot is filled: a panicking `f` yields `Err(CheckError::Panicked)`
/// for its own slot only (the panic is caught at the slot boundary, so the
/// other items are mapped exactly as if the poisoned item were absent),
/// and once any token in `cancels` fires, items not yet started yield
/// `Err(CheckError::Skipped)`.
fn run_map_isolated<T, R, F>(
    items: &[T],
    jobs: usize,
    cancels: &[CancelToken],
    f: F,
) -> Vec<Result<R, CheckError>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let one = |item: &T| -> Result<R, CheckError> {
        if cancels.iter().any(CancelToken::is_cancelled) {
            return Err(CheckError::Skipped);
        }
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item))).map_err(|payload| {
            CheckError::Panicked {
                message: payload_message(payload),
            }
        })
    };
    let jobs = jobs.clamp(1, items.len().max(1));
    if jobs <= 1 {
        return items.iter().map(one).collect();
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, Result<R, CheckError>)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut part = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        part.push((i, one(item)));
                    }
                    part
                })
            })
            .collect();
        for handle in handles {
            // `one` catches every panic of `f`, so a worker can only fail
            // via a harness bug; that is not recoverable per-slot.
            let part = handle
                .join()
                .expect("batch worker panicked outside the isolation boundary");
            indexed.extend(part);
        }
    });
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// [`run_map_isolated`] for infallible contexts (δ-profile chunks, legacy
/// single-result APIs): a captured panic is re-raised as a fresh panic in
/// the calling thread *after* every other item has completed.
fn run_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    run_map_isolated(items, jobs, &[], f)
        .into_iter()
        .map(|r| match r {
            Ok(r) => r,
            Err(e) => panic!("batch worker failed: {e}"),
        })
        .collect()
}

/// Collapsed verdict of a whole batch (the Table 1 row semantics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchOutcome {
    /// Every check proved `N`: no violation on any checked output.
    AllSafe,
    /// At least one check produced a violating vector (`V`).
    Violation,
    /// No violation found, but at least one check stayed inconclusive or
    /// was abandoned (`A`).
    Undecided,
}

/// Saturating aggregate of a batch's per-check reports.
#[derive(Clone, Debug, Default)]
pub struct BatchSummary {
    /// Checks in the batch.
    pub checks: u64,
    /// Checks proved safe.
    pub no_violation: u64,
    /// Checks with a violating vector.
    pub violations: u64,
    /// Checks left `Possible` or `Abandoned`.
    pub undecided: u64,
    /// Checks that failed (panicked) instead of finishing.
    pub failed: u64,
    /// Checks skipped because the batch was cancelled before they ran.
    pub skipped: u64,
    /// Case-analysis backtracks, summed.
    pub backtracks: u64,
    /// Solver effort counters, summed.
    pub solver: SolverStats,
    /// Stem-correlation counters, summed.
    pub stems: StemStats,
    /// Case-analysis counters, summed.
    pub case: CaseStats,
    /// Per-stage wall-clock, summed over checks (CPU-time-like: with N
    /// workers this exceeds the batch wall-clock by up to a factor N).
    pub stage_wall: StageTimes,
    /// Deterministic per-stage solver effort, summed over checks — the
    /// batch-level Table 1 breakdown (identical at any worker count).
    pub stage_effort: crate::check::StageEffort,
    /// Total per-check wall-clock (same CPU-time-like caveat).
    pub check_wall: Duration,
}

impl BatchSummary {
    /// Aggregates the reports with saturating arithmetic (a batch summary
    /// must never panic on pathological counter values). `failed` and
    /// `skipped` stay zero — errored slots have no report; the batch
    /// runner fills those counts from its error list.
    pub fn aggregate(reports: &[VerifyReport]) -> Self {
        let mut sum = BatchSummary::default();
        for r in reports {
            sum.checks = sum.checks.saturating_add(1);
            match &r.verdict {
                Verdict::NoViolation { .. } => {
                    sum.no_violation = sum.no_violation.saturating_add(1);
                }
                Verdict::Violation { .. } => {
                    sum.violations = sum.violations.saturating_add(1);
                }
                Verdict::Possible | Verdict::Abandoned => {
                    sum.undecided = sum.undecided.saturating_add(1);
                }
            }
            sum.backtracks = sum.backtracks.saturating_add(r.backtracks);
            sum.solver = sum.solver.saturating_add(&r.solver);
            sum.stems.stems = sum.stems.stems.saturating_add(r.stems.stems);
            sum.stems.effective_stems = sum
                .stems
                .effective_stems
                .saturating_add(r.stems.effective_stems);
            sum.stems.dead_branches = sum
                .stems
                .dead_branches
                .saturating_add(r.stems.dead_branches);
            sum.case = sum.case.saturating_add(&r.case);
            sum.stage_wall = sum.stage_wall.saturating_add(&r.stage_times);
            sum.stage_effort = sum.stage_effort.saturating_add(&r.effort);
            sum.check_wall = sum.check_wall.saturating_add(r.elapsed);
        }
        sum
    }
}

/// One failed slot of a batch: which check it was and why it produced no
/// report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchError {
    /// Index of the check in the requested batch.
    pub index: usize,
    /// The output the check targeted.
    pub output: NetId,
    /// The δ the check targeted.
    pub delta: i64,
    /// What went wrong.
    pub error: CheckError,
}

/// Result of one batch: per-check reports in **input order** plus the
/// aggregate summary and the batch wall-clock.
#[derive(Clone, Debug)]
pub struct BatchCheck {
    /// One report per *completed* check, in the order requested. A check
    /// that panicked or was skipped appears in [`BatchCheck::errors`]
    /// instead; the surviving reports are bit-identical to a batch run
    /// without the failed checks.
    pub reports: Vec<VerifyReport>,
    /// The failed slots, in request order (empty on a healthy batch).
    pub errors: Vec<BatchError>,
    /// Saturating aggregate over `reports`, with
    /// [`failed`](BatchSummary::failed)/[`skipped`](BatchSummary::skipped)
    /// from `errors`.
    pub summary: BatchSummary,
    /// Wall-clock of the whole batch (the number parallelism improves).
    pub wall: Duration,
}

impl BatchCheck {
    /// The collapsed verdict: `Violation` beats `Undecided` beats
    /// `AllSafe`. Failed or skipped checks count as undecided — the batch
    /// cannot claim `AllSafe` for a check that never finished.
    pub fn outcome(&self) -> BatchOutcome {
        if self.summary.violations > 0 {
            BatchOutcome::Violation
        } else if self.summary.undecided > 0 || !self.errors.is_empty() {
            BatchOutcome::Undecided
        } else {
            BatchOutcome::AllSafe
        }
    }

    /// Whether every requested check finished and decided (no errors, no
    /// undecided verdicts, every report exact).
    pub fn is_complete(&self) -> bool {
        self.errors.is_empty()
            && self.summary.undecided == 0
            && self.reports.iter().all(|r| r.completeness.is_exact())
    }
}

/// Fans the checks of a batch out over worker threads.
///
/// Deterministic by construction (see the module docs): any `jobs` value
/// produces the same reports as [`BatchRunner::serial`].
///
/// # Examples
///
/// ```
/// use ltt_core::{BatchOutcome, BatchRunner, CheckSession, VerifyConfig};
/// use ltt_netlist::suite::c17;
///
/// let c = c17(10);
/// let session = CheckSession::new(&c, VerifyConfig::default());
/// let runner = BatchRunner::auto();
/// let batch = runner.verify_all_outputs(&session, 31);
/// assert_eq!(batch.outcome(), BatchOutcome::AllSafe);
/// let batch = runner.verify_all_outputs(&session, 30);
/// assert_eq!(batch.outcome(), BatchOutcome::Violation);
/// ```
#[derive(Clone, Debug)]
pub struct BatchRunner {
    jobs: usize,
    fail_fast: bool,
    deadline: Option<Duration>,
    /// Extra per-check budget (and external cancellation sources) merged
    /// into every check this runner executes.
    extra: Budget,
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner::auto()
    }
}

impl BatchRunner {
    /// A runner with `jobs` workers; `0` means *auto* (one worker per
    /// available hardware thread).
    pub fn new(jobs: usize) -> Self {
        BatchRunner {
            jobs: if jobs == 0 { available_jobs() } else { jobs },
            fail_fast: false,
            deadline: None,
            extra: Budget::unlimited(),
        }
    }

    /// The single-threaded runner (no thread machinery at all).
    pub fn serial() -> Self {
        BatchRunner::new(1)
    }

    /// One worker per available hardware thread.
    pub fn auto() -> Self {
        BatchRunner::new(0)
    }

    /// The worker count this runner uses.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Cancel outstanding checks as soon as one check finds a violation:
    /// in-flight checks abort (degraded `Abandoned` reports), not-yet-
    /// started checks become [`CheckError::Skipped`]. Which checks get cut
    /// off depends on timing, so a fail-fast batch trades the runner's
    /// bit-exact determinism for latency — the violation itself is always
    /// reported.
    pub fn with_fail_fast(mut self, on: bool) -> Self {
        self.fail_fast = on;
        self
    }

    /// Bound the whole batch's wall-clock: past the deadline, in-flight
    /// checks degrade to sound partial results and remaining checks are
    /// skipped. Same determinism caveat as [`BatchRunner::with_fail_fast`].
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attach an **external** cancellation source: when `token` fires,
    /// in-flight checks degrade to sound partial results
    /// ([`Verdict::Abandoned`]) and not-yet-started checks become
    /// [`CheckError::Skipped`]. This is how a serving layer aborts the
    /// batch of a client that disconnected mid-request — cancellation only
    /// ever cuts work short, it never changes a completed check's report.
    pub fn with_cancel(self, token: CancelToken) -> Self {
        self.with_budget(Budget::unlimited().with_cancel(token))
    }

    /// Merge an extra per-check [`Budget`] (tightest-wins) into every check
    /// this runner executes — per-request backtrack caps, wall windows, or
    /// deadlines a caller wants applied on top of the session's own config.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.extra = self.extra.merged(&budget);
        self
    }

    /// The shared cancel token and extra per-check budget of one batch run,
    /// or `None` when this runner needs neither (keeping the default path
    /// free of any budget machinery).
    fn batch_controls(&self, start: Instant) -> Option<(CancelToken, Budget)> {
        if !self.fail_fast && self.deadline.is_none() && self.extra.is_unlimited() {
            return None;
        }
        let cancel = CancelToken::new();
        let mut extra = self.extra.clone().with_cancel(cancel.clone());
        if let Some(d) = self.deadline {
            extra = extra.with_deadline(start + d);
        }
        Some((cancel, extra))
    }

    /// The extra per-check [`Budget`] this runner would apply to a batch
    /// started now: the external budget (cancel tokens, caps) plus the
    /// batch deadline anchored at the current instant. For callers that
    /// invoke session APIs directly (e.g. a single delay search) but want
    /// resource behavior consistent with this runner's batches.
    pub fn per_check_budget(&self) -> Budget {
        let mut budget = self.extra.clone();
        if let Some(d) = self.deadline {
            budget = budget.with_deadline(Instant::now() + d);
        }
        budget
    }

    /// The tokens whose firing should *skip* not-yet-started items: the
    /// run's internal token (fail-fast / deadline) plus every external
    /// cancellation source attached via [`BatchRunner::with_cancel`].
    fn skip_tokens(&self, internal: Option<&CancelToken>) -> Vec<CancelToken> {
        let mut tokens: Vec<CancelToken> = self.extra.cancel_tokens().to_vec();
        tokens.extend(internal.cloned());
        tokens
    }

    /// Runs the checks `(output, δ)` against the session, in parallel.
    pub fn run(&self, session: &CheckSession, checks: &[(NetId, i64)]) -> BatchCheck {
        self.run_under(session, checks, &[])
    }

    /// [`BatchRunner::run`] with shared assumptions: every check pins each
    /// `(net, level)` before propagation.
    pub fn run_under(
        &self,
        session: &CheckSession,
        checks: &[(NetId, i64)],
        assumptions: &[(NetId, Level)],
    ) -> BatchCheck {
        let start = Instant::now();
        // Force the base fixpoint once before fan-out so workers never race
        // to compute it (OnceLock would serialize them anyway; this keeps
        // the cost out of the parallel region's critical path).
        session.warm_up();
        let controls = self.batch_controls(start);
        let (cancel, extra) = match &controls {
            Some((cancel, extra)) => (Some(cancel), extra.clone()),
            None => (None, Budget::unlimited()),
        };
        let skips = self.skip_tokens(cancel);
        let results = run_map_isolated(checks, self.jobs, &skips, |&(output, delta)| {
            let report = session.verify_under_budgeted(output, delta, assumptions, &extra);
            if self.fail_fast && report.verdict.is_violation() {
                if let Some(cancel) = cancel {
                    cancel.cancel();
                }
            }
            report
        });
        let mut reports = Vec::with_capacity(results.len());
        let mut errors = Vec::new();
        for (index, result) in results.into_iter().enumerate() {
            match result {
                Ok(report) => reports.push(report),
                Err(error) => errors.push(BatchError {
                    index,
                    output: checks[index].0,
                    delta: checks[index].1,
                    error,
                }),
            }
        }
        let mut summary = BatchSummary::aggregate(&reports);
        summary.checks = checks.len() as u64;
        for e in &errors {
            match e.error {
                CheckError::Panicked { .. } => summary.failed = summary.failed.saturating_add(1),
                CheckError::Skipped => summary.skipped = summary.skipped.saturating_add(1),
            }
        }
        BatchCheck {
            reports,
            errors,
            summary,
            wall: start.elapsed(),
        }
    }

    /// Checks one δ against **every** primary output of the session's
    /// circuit (the Table 1 semantics: `N` only if no output can violate).
    pub fn verify_all_outputs(&self, session: &CheckSession, delta: i64) -> BatchCheck {
        let checks: Vec<(NetId, i64)> = session
            .circuit()
            .outputs()
            .iter()
            .map(|&o| (o, delta))
            .collect();
        self.run(session, &checks)
    }

    /// Runs [`CheckSession::exact_delay`] for every primary output, in
    /// parallel. Results are in output-declaration order.
    ///
    /// # Panics
    ///
    /// Panics if a search panics (use [`BatchRunner::try_exact_delays`]
    /// for per-slot isolation).
    pub fn exact_delays(&self, session: &CheckSession) -> Vec<DelaySearch> {
        self.try_exact_delays(session)
            .into_iter()
            .map(|r| match r {
                Ok(s) => s,
                Err(e) => panic!("delay search failed: {e}"),
            })
            .collect()
    }

    /// Fault-isolated [`BatchRunner::exact_delays`]: one `Result` per
    /// primary output, in declaration order. A panicking search fills only
    /// its own slot with [`CheckError::Panicked`]; under the runner's
    /// deadline, searches that started degrade to sound `[lower, upper]`
    /// intervals (`proven_exact == false`) and searches that never started
    /// become [`CheckError::Skipped`]. Fail-fast does not apply (a delay
    /// search has no violation to stop on).
    pub fn try_exact_delays(&self, session: &CheckSession) -> Vec<Result<DelaySearch, CheckError>> {
        session.warm_up();
        let start = Instant::now();
        let no_fail_fast = BatchRunner {
            fail_fast: false,
            ..self.clone()
        };
        let controls = no_fail_fast.batch_controls(start);
        let (cancel, extra) = match &controls {
            Some((cancel, extra)) => (Some(cancel), extra.clone()),
            None => (None, Budget::unlimited()),
        };
        let skips = no_fail_fast.skip_tokens(cancel);
        run_map_isolated(session.circuit().outputs(), self.jobs, &skips, |&o| {
            session.exact_delay_budgeted(o, &extra)
        })
    }

    /// [`CheckSession::delay_profile`], parallelized by splitting the
    /// (ascending) δ axis into one contiguous chunk per worker. Each chunk
    /// runs its own incremental sweep from the session base; because each
    /// δ's consistency is a pure function of `(base, δ)` the concatenation
    /// is identical to the serial sweep.
    ///
    /// # Panics
    ///
    /// Panics if `deltas` is not strictly ascending.
    pub fn delay_profile(
        &self,
        session: &CheckSession,
        output: NetId,
        deltas: &[i64],
    ) -> Vec<ProfilePoint> {
        assert!(
            deltas.windows(2).all(|w| w[0] < w[1]),
            "deltas must be strictly ascending"
        );
        if self.jobs <= 1 || deltas.len() <= 1 {
            return session.delay_profile(output, deltas);
        }
        session.warm_up();
        let chunk = deltas.len().div_ceil(self.jobs);
        let chunks: Vec<&[i64]> = deltas.chunks(chunk).collect();
        run_map(&chunks, self.jobs, |&c| session.profile_chunk(output, c))
            .into_iter()
            .flatten()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::VerifyConfig;
    use ltt_netlist::generators::{carry_skip_adder, figure1};
    use ltt_netlist::suite::c17;

    #[test]
    fn run_map_preserves_order_and_covers_all_items() {
        let items: Vec<usize> = (0..97).collect();
        for jobs in [1, 2, 3, 8, 200] {
            let out = run_map(&items, jobs, |&x| x * 2);
            assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_map_isolated_captures_panics_per_slot() {
        // Regression for the old `resume_unwind` behavior: a panicking
        // item must fill only its own slot, never take down the batch.
        let items: Vec<usize> = (0..23).collect();
        for jobs in [1, 2, 4, 64] {
            let out = run_map_isolated(&items, jobs, &[], |&x| {
                if x % 7 == 3 {
                    panic!("boom at {x}");
                }
                x * 2
            });
            assert_eq!(out.len(), items.len());
            for (i, r) in out.iter().enumerate() {
                if i % 7 == 3 {
                    match r {
                        Err(CheckError::Panicked { message }) => {
                            assert!(message.contains(&format!("boom at {i}")));
                        }
                        other => panic!("slot {i}: expected panic capture, got {other:?}"),
                    }
                } else {
                    assert_eq!(r.as_ref().unwrap(), &(i * 2), "jobs = {jobs}");
                }
            }
        }
    }

    #[test]
    fn run_map_isolated_skips_after_cancel() {
        let items: Vec<usize> = (0..8).collect();
        let cancel = CancelToken::new();
        cancel.cancel();
        let out = run_map_isolated(&items, 1, std::slice::from_ref(&cancel), |&x| x);
        assert!(out.iter().all(|r| r == &Err(CheckError::Skipped)));
    }

    #[test]
    fn run_map_rethrows_captured_panics() {
        // The infallible wrapper still fails loudly — but with a fresh,
        // formatted panic, after all other items completed.
        let items = vec![1, 2, 3];
        let result = std::panic::catch_unwind(|| {
            run_map(&items, 2, |&x| {
                if x == 2 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn jobs_zero_means_auto() {
        assert_eq!(BatchRunner::new(0).jobs(), available_jobs());
        assert_eq!(BatchRunner::new(3).jobs(), 3);
        assert_eq!(BatchRunner::serial().jobs(), 1);
    }

    #[test]
    fn parallel_batch_matches_serial_reports() {
        let c = c17(10);
        let session = CheckSession::new(&c, VerifyConfig::default());
        for delta in [25, 30, 31] {
            let serial = BatchRunner::serial().verify_all_outputs(&session, delta);
            let par = BatchRunner::new(4).verify_all_outputs(&session, delta);
            assert_eq!(serial.reports.len(), par.reports.len());
            for (a, b) in serial.reports.iter().zip(&par.reports) {
                assert_eq!(a.output, b.output);
                assert_eq!(a.verdict, b.verdict);
                assert_eq!(a.before_gitd, b.before_gitd);
                assert_eq!(a.after_gitd, b.after_gitd);
                assert_eq!(a.after_stems, b.after_stems);
                assert_eq!(a.backtracks, b.backtracks);
                assert_eq!(a.solver, b.solver);
            }
            assert_eq!(serial.outcome(), par.outcome());
        }
    }

    #[test]
    fn summary_counts_add_up() {
        let c = c17(10);
        let session = CheckSession::new(&c, VerifyConfig::default());
        let batch = BatchRunner::new(2).verify_all_outputs(&session, 30);
        let s = &batch.summary;
        assert_eq!(s.checks, batch.reports.len() as u64);
        assert_eq!(
            s.checks,
            s.no_violation + s.violations + s.undecided + s.failed + s.skipped
        );
        assert!(s.violations > 0);
        assert!(batch.errors.is_empty());
        assert!(s.check_wall >= s.stage_wall.total() || s.checks == 0);
    }

    #[test]
    fn fail_fast_still_reports_the_violation() {
        let c = c17(10);
        let session = CheckSession::new(&c, VerifyConfig::default());
        for jobs in [1, 4] {
            let batch = BatchRunner::new(jobs)
                .with_fail_fast(true)
                .verify_all_outputs(&session, 30);
            assert_eq!(batch.outcome(), BatchOutcome::Violation);
            assert!(batch.reports.iter().any(|r| r.verdict.is_violation()));
            // Every slot is accounted for: report or error.
            assert_eq!(batch.reports.len() + batch.errors.len(), c.outputs().len());
        }
    }

    #[test]
    fn expired_deadline_degrades_not_crashes() {
        let c = figure1(10);
        let session = CheckSession::new(&c, VerifyConfig::default());
        let batch = BatchRunner::serial()
            .with_deadline(Duration::ZERO)
            .verify_all_outputs(&session, 60);
        // The single check either degraded (Abandoned + BudgetExhausted)
        // or was skipped; either way the batch is undecided, not AllSafe.
        assert_eq!(batch.outcome(), BatchOutcome::Undecided);
        assert!(!batch.is_complete());
        for r in &batch.reports {
            assert_eq!(r.verdict, Verdict::Abandoned);
            assert!(!r.completeness.is_exact());
        }
    }

    #[test]
    fn deadline_zero_delay_searches_stay_sound() {
        let c = figure1(10);
        let session = CheckSession::new(&c, VerifyConfig::default());
        let results = BatchRunner::serial()
            .with_deadline(Duration::ZERO)
            .try_exact_delays(&session);
        assert_eq!(results.len(), 1);
        // Nothing cancels the token (no fail-fast), so the search ran.
        let search = results[0].as_ref().expect("search ran");
        // Exact delay is 60: the degraded interval must contain it.
        assert!(!search.proven_exact);
        assert!(search.delay <= 60, "lower bound {}", search.delay);
        assert!(
            search.upper_bound >= 60,
            "upper bound {}",
            search.upper_bound
        );
    }

    #[test]
    fn parallel_profile_matches_serial() {
        let c = figure1(10);
        let s = c.outputs()[0];
        let session = CheckSession::new(&c, VerifyConfig::default());
        let deltas: Vec<i64> = (0..=70).step_by(5).collect();
        let serial = BatchRunner::serial().delay_profile(&session, s, &deltas);
        for jobs in [2, 3, 16] {
            let par = BatchRunner::new(jobs).delay_profile(&session, s, &deltas);
            assert_eq!(serial, par, "jobs = {jobs}");
        }
    }

    #[test]
    fn parallel_exact_delays_match_serial() {
        let c = carry_skip_adder(4, 2, 10);
        let session = CheckSession::new(&c, VerifyConfig::default());
        let serial = BatchRunner::serial().exact_delays(&session);
        let par = BatchRunner::new(4).exact_delays(&session);
        assert_eq!(serial.len(), par.len());
        for (a, b) in serial.iter().zip(&par) {
            assert_eq!(a.delay, b.delay);
            assert_eq!(a.proven_exact, b.proven_exact);
            assert_eq!(a.upper_bound, b.upper_bound);
            assert_eq!(a.vector, b.vector);
            assert_eq!(a.backtracks, b.backtracks);
        }
    }
}
