//! SCOAP controllability measures (Goldstein & Thigpen), used to guide the
//! case-analysis backtrace (§5: "We used SCOAP controllability to guide the
//! algorithm").

use ltt_netlist::{Circuit, GateKind, NetId};
use ltt_waveform::Level;

/// Per-net SCOAP combinational controllabilities `CC0` / `CC1`: an estimate
/// of how many line assignments are needed to set the net to 0 / 1
/// (primary inputs cost 1).
#[derive(Clone, Debug)]
pub struct Controllability {
    cc0: Vec<u32>,
    cc1: Vec<u32>,
}

impl Controllability {
    /// Computes SCOAP controllability for every net.
    ///
    /// # Examples
    ///
    /// ```
    /// use ltt_core::scoap::Controllability;
    /// use ltt_netlist::{CircuitBuilder, DelayInterval, GateKind};
    /// use ltt_waveform::Level;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut b = CircuitBuilder::new("t");
    /// let a = b.input("a");
    /// let c = b.input("b");
    /// let y = b.gate("y", GateKind::And, &[a, c], DelayInterval::fixed(10));
    /// b.mark_output(y);
    /// let circuit = b.build()?;
    /// let cc = Controllability::compute(&circuit);
    /// // Setting an AND output to 1 needs both inputs: costlier than 0.
    /// assert!(cc.of(y, Level::One) > cc.of(y, Level::Zero));
    /// # Ok(())
    /// # }
    /// ```
    pub fn compute(circuit: &Circuit) -> Controllability {
        let n = circuit.num_nets();
        let mut cc0 = vec![1u32; n];
        let mut cc1 = vec![1u32; n];
        for &gid in circuit.topo_gates() {
            let gate = circuit.gate(gid);
            let ins = gate.inputs();
            let sum = |v: &Vec<u32>| -> u32 {
                ins.iter()
                    .map(|i| v[i.index()])
                    .fold(0u32, u32::saturating_add)
            };
            let min = |v: &Vec<u32>| -> u32 { ins.iter().map(|i| v[i.index()]).min().unwrap_or(0) };
            let (c0, c1) = match gate.kind() {
                GateKind::And => (min(&cc0) + 1, sum(&cc1).saturating_add(1)),
                GateKind::Nand => (sum(&cc1).saturating_add(1), min(&cc0) + 1),
                GateKind::Or => (sum(&cc0).saturating_add(1), min(&cc1) + 1),
                GateKind::Nor => (min(&cc1) + 1, sum(&cc0).saturating_add(1)),
                GateKind::Not => (cc1[ins[0].index()] + 1, cc0[ins[0].index()] + 1),
                GateKind::Buffer | GateKind::Delay => {
                    (cc0[ins[0].index()] + 1, cc1[ins[0].index()] + 1)
                }
                GateKind::Mux => {
                    let (s0, s1) = (cc0[ins[0].index()], cc1[ins[0].index()]);
                    let (a0, a1) = (cc0[ins[1].index()], cc1[ins[1].index()]);
                    let (b0, b1) = (cc0[ins[2].index()], cc1[ins[2].index()]);
                    (
                        s0.saturating_add(a0)
                            .min(s1.saturating_add(b0))
                            .saturating_add(1),
                        s0.saturating_add(a1)
                            .min(s1.saturating_add(b1))
                            .saturating_add(1),
                    )
                }
                GateKind::Xor | GateKind::Xnor => {
                    // Fold the cheapest way to reach each parity.
                    let mut even = 0u32;
                    let mut odd = u32::MAX;
                    for i in ins {
                        let (z, o) = (cc0[i.index()], cc1[i.index()]);
                        let new_even = even.saturating_add(z).min(odd.saturating_add(o));
                        let new_odd = even.saturating_add(o).min(odd.saturating_add(z));
                        even = new_even;
                        odd = new_odd;
                    }
                    if gate.kind() == GateKind::Xor {
                        (even.saturating_add(1), odd.saturating_add(1))
                    } else {
                        (odd.saturating_add(1), even.saturating_add(1))
                    }
                }
            };
            cc0[gate.output().index()] = c0;
            cc1[gate.output().index()] = c1;
        }
        Controllability { cc0, cc1 }
    }

    /// The controllability of setting `net` to `level`.
    pub fn of(&self, net: NetId, level: Level) -> u32 {
        match level {
            Level::Zero => self.cc0[net.index()],
            Level::One => self.cc1[net.index()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltt_netlist::{CircuitBuilder, DelayInterval};

    fn d10() -> DelayInterval {
        DelayInterval::fixed(10)
    }

    #[test]
    fn inputs_cost_one() {
        let mut b = CircuitBuilder::new("t");
        let a = b.input("a");
        let y = b.gate("y", GateKind::Buffer, &[a], d10());
        b.mark_output(y);
        let c = b.build().unwrap();
        let cc = Controllability::compute(&c);
        assert_eq!(cc.of(a, Level::Zero), 1);
        assert_eq!(cc.of(a, Level::One), 1);
        assert_eq!(cc.of(y, Level::One), 2);
    }

    #[test]
    fn and_chain_cc1_grows_linearly() {
        // AND cascade: CC1 accumulates, CC0 stays small.
        use ltt_netlist::generators::cascade;
        let c = cascade(GateKind::And, 5, 10);
        let cc = Controllability::compute(&c);
        let out = c.outputs()[0];
        assert!(cc.of(out, Level::One) > 6);
        assert!(cc.of(out, Level::Zero) <= 6);
    }

    #[test]
    fn xor_controllabilities_balanced() {
        let mut b = CircuitBuilder::new("t");
        let a = b.input("a");
        let b2 = b.input("b");
        let y = b.gate("y", GateKind::Xor, &[a, b2], d10());
        b.mark_output(y);
        let c = b.build().unwrap();
        let cc = Controllability::compute(&c);
        assert_eq!(cc.of(y, Level::Zero), 3); // 0⊕0 (or 1⊕1): 1+1+1
        assert_eq!(cc.of(y, Level::One), 3);
    }

    #[test]
    fn nor_inverts_roles() {
        let mut b = CircuitBuilder::new("t");
        let a = b.input("a");
        let b2 = b.input("b");
        let y = b.gate("y", GateKind::Nor, &[a, b2], d10());
        b.mark_output(y);
        let c = b.build().unwrap();
        let cc = Controllability::compute(&c);
        // NOR to 1 needs both inputs 0; NOR to 0 needs one input 1.
        assert!(cc.of(y, Level::One) > cc.of(y, Level::Zero));
    }
}

/// Per-net SCOAP combinational observability `CO`: an estimate of how many
/// line assignments are needed to propagate a net's value to some primary
/// output (primary outputs cost 0). Complements [`Controllability`] for
/// search heuristics.
#[derive(Clone, Debug)]
pub struct Observability {
    co: Vec<u32>,
}

impl Observability {
    /// Computes SCOAP observability for every net, given the
    /// controllability table.
    ///
    /// # Examples
    ///
    /// ```
    /// use ltt_core::scoap::{Controllability, Observability};
    /// use ltt_netlist::generators::cascade;
    /// use ltt_netlist::GateKind;
    ///
    /// let c = cascade(GateKind::And, 4, 10);
    /// let cc = Controllability::compute(&c);
    /// let co = Observability::compute(&c, &cc);
    /// // The output is directly observable; the chain input is not.
    /// assert_eq!(co.of(c.outputs()[0]), 0);
    /// assert!(co.of(c.inputs()[0]) > 0);
    /// ```
    pub fn compute(circuit: &Circuit, cc: &Controllability) -> Observability {
        let mut co = vec![u32::MAX; circuit.num_nets()];
        for &o in circuit.outputs() {
            co[o.index()] = 0;
        }
        for &gid in circuit.topo_gates().iter().rev() {
            let gate = circuit.gate(gid);
            let out_co = co[gate.output().index()];
            if out_co == u32::MAX {
                continue; // output not observable (dead logic)
            }
            let ins = gate.inputs();
            for (j, &inp) in ins.iter().enumerate() {
                let side_cost: u32 = match gate.kind() {
                    GateKind::And | GateKind::Nand => ins
                        .iter()
                        .enumerate()
                        .filter(|&(k, _)| k != j)
                        .map(|(_, i)| cc.of(*i, Level::One))
                        .fold(0u32, u32::saturating_add),
                    GateKind::Or | GateKind::Nor => ins
                        .iter()
                        .enumerate()
                        .filter(|&(k, _)| k != j)
                        .map(|(_, i)| cc.of(*i, Level::Zero))
                        .fold(0u32, u32::saturating_add),
                    GateKind::Not | GateKind::Buffer | GateKind::Delay => 0,
                    GateKind::Xor | GateKind::Xnor => ins
                        .iter()
                        .enumerate()
                        .filter(|&(k, _)| k != j)
                        .map(|(_, i)| cc.of(*i, Level::Zero).min(cc.of(*i, Level::One)))
                        .fold(0u32, u32::saturating_add),
                    GateKind::Mux => {
                        if j == 0 {
                            // Observing the select needs differing data.
                            let a = ins[1];
                            let b = ins[2];
                            (cc.of(a, Level::Zero).saturating_add(cc.of(b, Level::One)))
                                .min(cc.of(a, Level::One).saturating_add(cc.of(b, Level::Zero)))
                        } else if j == 1 {
                            cc.of(ins[0], Level::Zero) // select must pick a
                        } else {
                            cc.of(ins[0], Level::One) // select must pick b
                        }
                    }
                };
                let through = out_co.saturating_add(side_cost).saturating_add(1);
                let slot = &mut co[inp.index()];
                *slot = (*slot).min(through);
            }
        }
        Observability { co }
    }

    /// The observability of `net` (`u32::MAX` for unobservable nets).
    pub fn of(&self, net: NetId) -> u32 {
        self.co[net.index()]
    }
}

#[cfg(test)]
mod observability_tests {
    use super::*;
    use ltt_netlist::generators::cascade;
    use ltt_netlist::{CircuitBuilder, DelayInterval};

    #[test]
    fn outputs_are_free_and_depth_costs() {
        let c = cascade(GateKind::And, 4, 10);
        let cc = Controllability::compute(&c);
        let co = Observability::compute(&c, &cc);
        assert_eq!(co.of(c.outputs()[0]), 0);
        // Each level adds at least 1 (plus the side-input cost).
        let e0 = c.net_by_name("e0").unwrap();
        let n2 = c.net_by_name("n2").unwrap();
        assert!(co.of(e0) > co.of(n2));
    }

    #[test]
    fn fanout_takes_the_cheapest_route() {
        let d = DelayInterval::fixed(10);
        let mut b = CircuitBuilder::new("f");
        let a = b.input("a");
        let cheap = b.gate("cheap", GateKind::Buffer, &[a], d);
        let e1 = b.input("e1");
        let e2 = b.input("e2");
        let deep1 = b.gate("deep1", GateKind::And, &[a, e1], d);
        let deep2 = b.gate("deep2", GateKind::And, &[deep1, e2], d);
        b.mark_output(cheap);
        b.mark_output(deep2);
        let c = b.build().unwrap();
        let cc = Controllability::compute(&c);
        let co = Observability::compute(&c, &cc);
        // a is observable through the buffer at cost 1.
        assert_eq!(co.of(a), 1);
    }

    #[test]
    fn mux_select_observability_needs_differing_data() {
        let d = DelayInterval::fixed(10);
        let mut b = CircuitBuilder::new("m");
        let s = b.input("s");
        let x = b.input("x");
        let y = b.input("y");
        let m = b.gate("m", GateKind::Mux, &[s, x, y], d);
        b.mark_output(m);
        let c = b.build().unwrap();
        let cc = Controllability::compute(&c);
        let co = Observability::compute(&c, &cc);
        // Select: set x/y to differ (1 + 1) + 1 = 3.
        assert_eq!(co.of(s), 3);
        // Data input x: set select to 0 (cost 1) + 1 = 2.
        assert_eq!(co.of(x), 2);
    }

    #[test]
    fn dead_logic_is_unobservable() {
        let d = DelayInterval::fixed(10);
        let mut b = CircuitBuilder::new("dead");
        let a = b.input("a");
        let used = b.gate("used", GateKind::Not, &[a], d);
        let dead = b.gate("dead", GateKind::Not, &[a], d);
        b.mark_output(used);
        let c = b.build().unwrap();
        let cc = Controllability::compute(&c);
        let co = Observability::compute(&c, &cc);
        assert_eq!(co.of(dead), u32::MAX);
    }
}
