//! Structured errors for the check harness and its callers.
//!
//! Two layers: [`CheckError`] is the per-slot failure of one check inside a
//! batch (a panic caught by the fault-isolated runner, or a slot skipped by
//! fail-fast / batch cancellation); [`Error`] is the top-level error type
//! CLI-style callers report, with a conventional process [exit
//! code](Error::exit_code). Both are hand-rolled (`Display` +
//! `std::error::Error`) — the workspace is offline and takes no
//! `thiserror`-style dependency.

/// Why one slot of a batch produced no report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// The check panicked; the panic was caught at the slot boundary and
    /// the rest of the batch completed normally.
    Panicked {
        /// The panic payload, downcast to a string when possible.
        message: String,
    },
    /// The check never ran: an earlier event (fail-fast violation, batch
    /// cancellation) cancelled the remaining slots.
    Skipped,
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Panicked { message } => write!(f, "check panicked: {message}"),
            CheckError::Skipped => write!(f, "check skipped (batch cancelled before it ran)"),
        }
    }
}

impl std::error::Error for CheckError {}

/// Top-level harness error with a conventional process exit code.
///
/// The exit-code contract (documented in the CLI README):
/// `0` no violation, `1` violation found, `2` incomplete (budget exhausted
/// or a check failed), `3` usage or input error. `Error` only covers the
/// failure codes — success and violation are verdicts, not errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// Bad command line: unknown flag, missing argument, unparsable value.
    Usage(String),
    /// A file could not be read or written.
    Io {
        /// The offending path, as given by the user.
        path: String,
        /// The underlying OS error message.
        message: String,
    },
    /// The input parsed but is not a usable circuit (cycle, undriven net,
    /// unknown output name, …).
    Invalid(String),
    /// A check inside the run failed (panicked) rather than finishing.
    CheckFailed {
        /// What was being checked (output name, file, …).
        context: String,
        /// The underlying [`CheckError`] message.
        message: String,
    },
}

impl Error {
    /// The conventional process exit code for this error: `3` for
    /// usage/input problems, `2` for a run that started but could not
    /// complete.
    pub fn exit_code(&self) -> u8 {
        match self {
            Error::Usage(_) | Error::Io { .. } | Error::Invalid(_) => 3,
            Error::CheckFailed { .. } => 2,
        }
    }

    /// Convenience constructor for usage errors.
    pub fn usage(message: impl Into<String>) -> Self {
        Error::Usage(message.into())
    }

    /// Convenience constructor for invalid-input errors.
    pub fn invalid(message: impl Into<String>) -> Self {
        Error::Invalid(message.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Usage(m) => write!(f, "{m}"),
            Error::Io { path, message } => write!(f, "{path}: {message}"),
            Error::Invalid(m) => write!(f, "invalid input: {m}"),
            Error::CheckFailed { context, message } => {
                write!(f, "check failed ({context}): {message}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_follow_the_contract() {
        assert_eq!(Error::usage("x").exit_code(), 3);
        assert_eq!(Error::invalid("x").exit_code(), 3);
        assert_eq!(
            Error::Io {
                path: "a".into(),
                message: "b".into()
            }
            .exit_code(),
            3
        );
        assert_eq!(
            Error::CheckFailed {
                context: "out".into(),
                message: "boom".into()
            }
            .exit_code(),
            2
        );
    }

    #[test]
    fn display_is_informative() {
        let e = Error::CheckFailed {
            context: "s".into(),
            message: "boom".into(),
        };
        let s = e.to_string();
        assert!(s.contains('s') && s.contains("boom"));
        assert!(CheckError::Panicked {
            message: "boom".into()
        }
        .to_string()
        .contains("panicked"));
        assert!(CheckError::Skipped.to_string().contains("skipped"));
    }

    #[test]
    fn error_trait_objects_work() {
        let e: Box<dyn std::error::Error> = Box::new(Error::usage("bad flag"));
        assert_eq!(e.to_string(), "bad flag");
    }
}
