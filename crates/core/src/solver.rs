//! Event-driven fixpoint computation (§3.3, Fig. 4 `reach_fixpoint`).
//!
//! The constraint system is solved by chaotic iteration: gate constraints
//! are taken from a work queue, their projections applied, and every
//! constraint reading a net whose domain narrowed is re-scheduled. Each
//! domain only shrinks (projection targets are intersected in), so the
//! unique greatest fixpoint is reached in finitely many steps (Theorem 1).
//!
//! The inner loop is allocation-free: gate metadata comes from the
//! circuit's flat [`Topology`] tables, unary and 2-input AND-family gates
//! go through the straight-line projection kernels, and the general rules
//! write into scratch buffers owned by the narrower. The FIFO queue and
//! per-gate `queued` flags make the event order — and therefore
//! [`SolverStats`] — a pure function of the narrowing requests, identical
//! across all of these code paths.

use crate::budget::{ArmedBudget, Budget, TripReason};
use crate::domain::{Checkpoint, SignalStore};
use crate::learning::ImplicationTable;
use crate::projection::{project_and2, project_into, project_unary2};
use ltt_netlist::{Circuit, GateId, GateKind, NetId, Topology};
use ltt_waveform::Signal;
use std::collections::VecDeque;
use std::sync::Arc;

/// Result of running the queue to quiescence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FixpointResult {
    /// The greatest fixpoint was reached with all domains non-empty.
    Fixpoint,
    /// Some domain became `(φ, φ)`: the system has no solution.
    Contradiction,
    /// The attached [`Budget`] tripped before quiescence. The domains are a
    /// *superset* of the greatest fixpoint (narrowing only removes
    /// waveforms), so everything proven about them is still sound — but
    /// they are not the fixpoint, so absence of a contradiction proves
    /// nothing. Callers must abort, never backtrack, on this result.
    Interrupted,
}

/// Restriction of propagation to a fanin cone, for *masked* cone-scoped
/// checks (see [`ConeMode`](crate::ConeMode)): gates outside the mask are
/// never scheduled and learned implications never narrow nets outside it.
///
/// The masked narrower operates on the whole-circuit store, but because the
/// cone is fanin-closed (every input of a cone gate is a cone net) the
/// blocked fringe gates could only ever have *read* cone nets — so skipping
/// them leaves the fixpoint on cone nets untouched while making the event
/// schedule identical, gate for gate, to a run on the extracted sub-circuit
/// (the *sliced* mode).
#[derive(Debug)]
pub struct NarrowScope {
    gates: Vec<bool>,
    nets: Vec<bool>,
}

impl NarrowScope {
    /// Builds a scope from per-gate and per-net membership masks (indexed
    /// by [`GateId::index`] / [`NetId::index`]).
    pub fn new(gates: Vec<bool>, nets: Vec<bool>) -> Self {
        NarrowScope { gates, nets }
    }

    /// Whether the gate is inside the scope.
    #[inline]
    pub fn contains_gate(&self, gate: GateId) -> bool {
        self.gates[gate.index()]
    }

    /// Whether the net is inside the scope.
    #[inline]
    pub fn contains_net(&self, net: NetId) -> bool {
        self.nets[net.index()]
    }
}

/// Counters describing solver effort.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Gate-constraint applications (events processed).
    pub events: u64,
    /// Domain narrowings performed.
    pub narrowings: u64,
    /// Class restrictions injected by static-learning implications.
    pub learned_applications: u64,
}

impl SolverStats {
    /// Counter increments accumulated since `earlier` (saturating, so a
    /// stale baseline can never panic the caller).
    pub fn since(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            events: self.events.saturating_sub(earlier.events),
            narrowings: self.narrowings.saturating_sub(earlier.narrowings),
            learned_applications: self
                .learned_applications
                .saturating_sub(earlier.learned_applications),
        }
    }

    /// Per-field saturating sum (aggregation must never panic).
    pub fn saturating_add(&self, other: &SolverStats) -> SolverStats {
        SolverStats {
            events: self.events.saturating_add(other.events),
            narrowings: self.narrowings.saturating_add(other.narrowings),
            learned_applications: self
                .learned_applications
                .saturating_add(other.learned_applications),
        }
    }
}

/// The event-driven waveform narrower: circuit + domains + work queue.
///
/// # Examples
///
/// ```
/// use ltt_core::Narrower;
/// use ltt_netlist::{CircuitBuilder, DelayInterval, GateKind};
/// use ltt_waveform::{Signal, Time};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CircuitBuilder::new("chain");
/// let a = b.input("a");
/// let x = b.gate("x", GateKind::Not, &[a], DelayInterval::fixed(10));
/// b.mark_output(x);
/// let circuit = b.build()?;
///
/// let mut nw = Narrower::new(&circuit);
/// nw.narrow_net(a, Signal::floating_input());
/// nw.reach_fixpoint();
/// // Forward propagation bounds x's settling time by the gate delay.
/// assert_eq!(nw.domain(x).latest_settle(), Time::new(10));
/// # Ok(())
/// # }
/// ```
pub struct Narrower<'c> {
    circuit: &'c Circuit,
    /// Flat connectivity tables, shared with every other narrower of the
    /// same circuit (built once, cached on the circuit).
    topo: Arc<Topology>,
    store: SignalStore,
    queue: VecDeque<GateId>,
    queued: Vec<bool>,
    /// Optional cone restriction (masked cone mode); `None` = whole circuit.
    scope: Option<Arc<NarrowScope>>,
    implications: Option<Arc<ImplicationTable>>,
    stats: SolverStats,
    budget: ArmedBudget,
    /// Scratch input-domain buffer for the general projection path.
    scratch_in: Vec<Signal>,
    /// Scratch target buffer for the general projection path.
    scratch_tgt: Vec<Signal>,
    /// Safety valve: abort (conservatively, as `Fixpoint`) after this many
    /// events. Practically unreachable on sane inputs.
    pub max_events: u64,
}

impl<'c> Narrower<'c> {
    /// Creates a narrower with all domains full and an empty queue.
    pub fn new(circuit: &'c Circuit) -> Self {
        Self::from_store(circuit, SignalStore::new(circuit))
    }

    /// Creates a narrower whose domains start from `domains` — typically a
    /// base fixpoint computed once and shared by many checks (see
    /// [`CheckSession`](crate::CheckSession)) — instead of full signals.
    /// The queue starts empty: a seeded fixpoint needs no re-propagation
    /// until a new constraint narrows some net.
    ///
    /// # Panics
    ///
    /// Panics if `domains.len() != circuit.num_nets()`.
    pub fn with_domains(circuit: &'c Circuit, domains: &[Signal]) -> Self {
        assert_eq!(
            domains.len(),
            circuit.num_nets(),
            "one seeded domain per net"
        );
        Self::from_store(circuit, SignalStore::from_domains(domains))
    }

    /// Creates a narrower around an already-built store. This is the
    /// cheap seeding path for batch sessions: `CheckSession` derives the
    /// store planes once for its base fixpoint and hands every check a
    /// clone (a pair of flat memcpys), skipping the per-check lattice
    /// derivation that [`Narrower::with_domains`] performs.
    ///
    /// # Panics
    ///
    /// Panics if the store's net count differs from the circuit's.
    pub(crate) fn from_store(circuit: &'c Circuit, store: SignalStore) -> Self {
        assert_eq!(
            store.all().len(),
            circuit.num_nets(),
            "one stored domain per net"
        );
        Narrower {
            circuit,
            topo: circuit.topology(),
            store,
            queue: VecDeque::new(),
            queued: vec![false; circuit.num_gates()],
            scope: None,
            implications: None,
            stats: SolverStats::default(),
            budget: ArmedBudget::unlimited(),
            scratch_in: Vec::new(),
            scratch_tgt: Vec::new(),
            max_events: u64::MAX,
        }
    }

    /// Attaches (and arms) a resource budget: the per-check wall-clock
    /// window starts now, and [`Narrower::reach_fixpoint`] will return
    /// [`FixpointResult::Interrupted`] as soon as any limit trips. The trip
    /// is sticky — once tripped the narrower stays interrupted until the
    /// budget is replaced.
    pub fn set_budget(&mut self, budget: &Budget) {
        self.budget = budget.arm();
    }

    /// The attached armed budget (for pipeline stages that poll between
    /// narrower runs).
    pub(crate) fn budget_mut(&mut self) -> &mut ArmedBudget {
        &mut self.budget
    }

    /// The reason the attached budget tripped, if it has.
    pub fn budget_tripped(&self) -> Option<TripReason> {
        self.budget.tripped()
    }

    /// Attaches a static-learning implication table; learned class
    /// restrictions fire whenever a net's class becomes fixed.
    pub fn set_implications(&mut self, table: Arc<ImplicationTable>) {
        self.implications = Some(table);
    }

    /// Restricts propagation to a cone (see [`NarrowScope`]). Must be set
    /// before any constraint is scheduled; out-of-scope gates already in
    /// the queue would still run.
    pub fn set_scope(&mut self, scope: Arc<NarrowScope>) {
        self.scope = Some(scope);
    }

    /// The circuit this narrower operates on.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// The current domain of a net.
    pub fn domain(&self, net: NetId) -> Signal {
        self.store.get(net)
    }

    /// All current domains, indexed by [`NetId::index`].
    pub fn domains(&self) -> &[Signal] {
        self.store.all()
    }

    /// Whether some domain is empty.
    pub fn has_contradiction(&self) -> bool {
        self.store.has_contradiction()
    }

    /// Effort counters so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Marks the current state for later [`Narrower::rollback`], opening a
    /// new trail decision window.
    pub fn checkpoint(&mut self) -> Checkpoint {
        self.store.checkpoint()
    }

    /// Restores domains to a checkpoint and clears the queue (pending
    /// events refer to the rolled-back state).
    pub fn rollback(&mut self, mark: Checkpoint) {
        self.store.rollback(mark);
        self.clear_queue();
    }

    /// Empties the event queue, resetting only the `queued` flags of gates
    /// actually enqueued — O(queue length), not O(num gates). The case
    /// analysis rolls back once per backtrack, so a full `queued` scan here
    /// would dominate deep searches on large circuits.
    ///
    /// Drained events are *not* counted in [`SolverStats`]: the counters
    /// record work performed, and these constraints were never applied.
    fn clear_queue(&mut self) {
        for gate in self.queue.drain(..) {
            self.queued[gate.index()] = false;
        }
    }

    /// Schedules a gate constraint. Gates outside an attached
    /// [`NarrowScope`] are dropped silently — the fringe readers of a cone
    /// net never run in a masked cone check.
    pub fn schedule(&mut self, gate: GateId) {
        if let Some(scope) = &self.scope {
            if !scope.contains_gate(gate) {
                return;
            }
        }
        if !self.queued[gate.index()] {
            self.queued[gate.index()] = true;
            self.queue.push_back(gate);
        }
    }

    /// Schedules every constraint touching `net` (its driver and readers).
    pub fn schedule_net(&mut self, net: NetId) {
        let topo = Arc::clone(&self.topo);
        for &gate in topo.touching(net) {
            self.schedule(gate);
        }
    }

    /// Schedules every gate in the circuit.
    pub fn schedule_all(&mut self) {
        for gid in self.circuit.gate_ids() {
            self.schedule(gid);
        }
    }

    /// Narrows a net's domain (by intersection) and schedules affected
    /// constraints on change. Returns whether the domain changed.
    pub fn narrow_net(&mut self, net: NetId, target: Signal) -> bool {
        if self.store.narrow_to(net, target) {
            self.stats.narrowings += 1;
            self.schedule_net(net);
            self.fire_implications(net);
            true
        } else {
            false
        }
    }

    fn fire_implications(&mut self, net: NetId) {
        // Cheap rejections first (the common case by far): no table, or the
        // net's class is not fixed — the store's lattice plane answers that
        // without touching the bounds row or the table's `Arc`.
        if self.implications.is_none() {
            return;
        }
        let Some(level) = self.store.fixed_class(net) else {
            return;
        };
        let table = self.implications.clone().expect("checked above");
        for &(target, value) in table.implied_by(net, level) {
            // Masked cone mode: implications leaving the cone are skipped,
            // exactly matching a sliced run's cone-internal table.
            if let Some(scope) = &self.scope {
                if !scope.contains_net(target) {
                    continue;
                }
            }
            let restriction = {
                let cur = self.store.get(target);
                cur.restrict_to_class(value)
            };
            if self.store.narrow_to(target, restriction) {
                self.stats.narrowings += 1;
                self.stats.learned_applications += 1;
                self.schedule_net(target);
                // Recursively fire on the newly fixed net.
                self.fire_implications(target);
            }
        }
    }

    /// Applies one gate constraint; returns whether any domain narrowed.
    ///
    /// Dispatches on gate shape: unary gates and 2-input AND-family gates
    /// run the straight-line kernels; everything else gathers its input
    /// domains into a scratch buffer and runs the general projection. All
    /// paths narrow the output first, then the inputs in gate order, so the
    /// event schedule is shape-independent.
    pub fn apply_gate(&mut self, gate: GateId) -> bool {
        let kind = self.topo.gate_kind(gate);
        let d = i64::from(self.topo.gate_dmax(gate));
        let out_net = self.topo.gate_output(gate);
        let output = self.store.get(out_net);
        let ins = self.topo.gate_inputs(gate);
        match *ins {
            [a_net] => {
                let (out_t, in_t) = project_unary2(kind, d, self.store.get(a_net), output);
                let mut changed = self.narrow_net(out_net, out_t);
                changed |= self.narrow_net(a_net, in_t);
                changed
            }
            [a_net, b_net]
                if matches!(
                    kind,
                    GateKind::And | GateKind::Or | GateKind::Nand | GateKind::Nor
                ) =>
            {
                let (out_t, a_t, b_t) = project_and2(
                    kind,
                    d,
                    self.store.get(a_net),
                    self.store.get(b_net),
                    output,
                );
                let mut changed = self.narrow_net(out_net, out_t);
                changed |= self.narrow_net(a_net, a_t);
                changed |= self.narrow_net(b_net, b_t);
                changed
            }
            _ => {
                // General path: gather into the reusable scratch buffers
                // (taken out of `self` to satisfy the borrow checker; the
                // swap is pointer-sized, no allocation).
                let mut scratch_in = std::mem::take(&mut self.scratch_in);
                let mut scratch_tgt = std::mem::take(&mut self.scratch_tgt);
                scratch_in.clear();
                scratch_in.extend(ins.iter().map(|&n| self.store.get(n)));
                let out_t = project_into(kind, d, &scratch_in, output, &mut scratch_tgt);
                let mut changed = self.narrow_net(out_net, out_t);
                for (i, &target) in scratch_tgt.iter().enumerate() {
                    let net = self.topo.gate_inputs(gate)[i];
                    changed |= self.narrow_net(net, target);
                }
                self.scratch_in = scratch_in;
                self.scratch_tgt = scratch_tgt;
                changed
            }
        }
    }

    /// Runs the event queue to quiescence (Fig. 4 `reach_fixpoint`).
    ///
    /// Returns [`FixpointResult::Contradiction`] as soon as any domain goes
    /// empty (Theorem 2's check generalized: an empty domain anywhere means
    /// the system has no solution), or [`FixpointResult::Interrupted`] if
    /// the attached budget trips (see [`Narrower::set_budget`]); a
    /// contradiction already on entry wins over an earlier trip, since it
    /// is a sound final result.
    pub fn reach_fixpoint(&mut self) -> FixpointResult {
        if self.store.has_contradiction() {
            self.clear_queue();
            return FixpointResult::Contradiction;
        }
        if self.budget.tripped().is_some() {
            return FixpointResult::Interrupted;
        }
        while let Some(gate) = self.queue.pop_front() {
            self.queued[gate.index()] = false;
            self.stats.events += 1;
            if self.stats.events > self.max_events {
                return FixpointResult::Fixpoint;
            }
            if self.budget.poll(self.stats.events).is_some() {
                // Leave the queue in place: the caller aborts (it must not
                // treat this as a fixpoint) and any reuse goes through
                // rollback, which clears the queue.
                return FixpointResult::Interrupted;
            }
            self.apply_gate(gate);
            if self.store.has_contradiction() {
                self.clear_queue();
                return FixpointResult::Contradiction;
            }
        }
        FixpointResult::Fixpoint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltt_netlist::generators::figure1;
    use ltt_netlist::{CircuitBuilder, DelayInterval, GateKind};
    use ltt_waveform::{Aw, Level, Time};

    fn d10() -> DelayInterval {
        DelayInterval::fixed(10)
    }

    #[test]
    fn forward_propagation_bounds_settling() {
        // Chain of 3 NOTs: settle ≤ 30.
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let x = b.gate("x", GateKind::Not, &[a], d10());
        let y = b.gate("y", GateKind::Not, &[x], d10());
        let z = b.gate("z", GateKind::Not, &[y], d10());
        b.mark_output(z);
        let c = b.build().unwrap();
        let mut nw = Narrower::new(&c);
        nw.narrow_net(a, Signal::floating_input());
        assert_eq!(nw.reach_fixpoint(), FixpointResult::Fixpoint);
        assert_eq!(nw.domain(z).latest_settle(), Time::new(30));
        assert_eq!(nw.domain(y).latest_settle(), Time::new(20));
    }

    /// The paper's Example 2, end to end: the Figure 1 circuit with
    /// δ = 61 is proven violation-free by plain narrowing.
    #[test]
    fn example2_figure1_delta61_no_violation() {
        let c = figure1(10);
        let s = c.outputs()[0];
        let mut nw = Narrower::new(&c);
        for &i in c.inputs() {
            nw.narrow_net(i, Signal::floating_input());
        }
        nw.narrow_net(s, Signal::violation(Time::new(61)));
        assert_eq!(nw.reach_fixpoint(), FixpointResult::Contradiction);
    }

    /// …and with δ = 60 the system stays consistent (a violation exists).
    #[test]
    fn example2_figure1_delta60_possible() {
        let c = figure1(10);
        let s = c.outputs()[0];
        let mut nw = Narrower::new(&c);
        for &i in c.inputs() {
            nw.narrow_net(i, Signal::floating_input());
        }
        nw.narrow_net(s, Signal::violation(Time::new(60)));
        assert_eq!(nw.reach_fixpoint(), FixpointResult::Fixpoint);
        assert!(!nw.domain(s).is_empty());
    }

    /// Intermediate domains of Example 2's mechanics, observed at δ = 60
    /// (the δ = 61 run ends in a contradiction, so its intermediate state
    /// is not observable at the fixpoint).
    #[test]
    fn example2_intermediate_intervals_delta60() {
        let c = figure1(10);
        let s = c.outputs()[0];
        let mut nw = Narrower::new(&c);
        for &i in c.inputs() {
            nw.narrow_net(i, Signal::floating_input());
        }
        nw.narrow_net(s, Signal::violation(Time::new(60)));
        nw.reach_fixpoint();
        // n5 (side input of g8 = OR) settles by 50: at δ = 60 it can still
        // carry the violation, but only by settling to 1 (controlling)
        // exactly at t = 50.
        let n5 = c.net_by_name("n5").unwrap();
        assert_eq!(
            nw.domain(n5)[Level::One],
            Aw::new(Time::new(50), Time::new(50))
        );
        // Its non-controlling class is not narrowed (n7 may carry instead).
        assert_eq!(nw.domain(n5)[Level::Zero], Aw::before(Time::new(50)));
        // n7's controlling class must transition at or after 50 to reach
        // δ = 60 through g8's delay of 10.
        let n7 = c.net_by_name("n7").unwrap();
        assert_eq!(
            nw.domain(n7)[Level::One],
            Aw::new(Time::new(50), Time::new(60))
        );
        // n7's class 0 is unconstrained below its settle bound: n5 can
        // still carry.
        assert_eq!(nw.domain(n7)[Level::Zero], Aw::before(Time::new(60)));
    }

    /// At δ = 61 the "blocking controlling class" elimination of Example 2
    /// is visible one step before the contradiction: stop the fixpoint
    /// right after the event that empties n5's controlling class.
    #[test]
    fn example2_blocking_class_removed_at_delta61() {
        let c = figure1(10);
        let s = c.outputs()[0];
        let n5 = c.net_by_name("n5").unwrap();
        let mut nw = Narrower::new(&c);
        for &i in c.inputs() {
            nw.narrow_net(i, Signal::floating_input());
        }
        // Forward pass first (settle bounds), then the check constraint.
        nw.reach_fixpoint();
        assert_eq!(nw.domain(n5).latest_settle(), Time::new(50));
        nw.narrow_net(s, Signal::violation(Time::new(61)));
        // Apply only g8 (the driver of s) once.
        let g8 = c.net(s).driver().unwrap();
        nw.apply_gate(g8);
        assert!(nw.domain(n5)[Level::One].is_empty());
        assert!(!nw.domain(n5)[Level::Zero].is_empty());
        let n7 = c.net_by_name("n7").unwrap();
        assert_eq!(
            nw.domain(n7)[Level::Zero],
            Aw::new(Time::new(51), Time::new(60))
        );
        assert_eq!(
            nw.domain(n7)[Level::One],
            Aw::new(Time::new(51), Time::new(60))
        );
    }

    #[test]
    fn rollback_restores_and_clears_queue() {
        let c = figure1(10);
        let s = c.outputs()[0];
        let mut nw = Narrower::new(&c);
        for &i in c.inputs() {
            nw.narrow_net(i, Signal::floating_input());
        }
        let mark = nw.checkpoint();
        nw.narrow_net(s, Signal::violation(Time::new(61)));
        assert_eq!(nw.reach_fixpoint(), FixpointResult::Contradiction);
        nw.rollback(mark);
        assert!(!nw.has_contradiction());
        assert_eq!(nw.domain(s), Signal::FULL);
        // Re-running with δ = 60 from the restored state works.
        nw.narrow_net(s, Signal::violation(Time::new(60)));
        assert_eq!(nw.reach_fixpoint(), FixpointResult::Fixpoint);
    }

    #[test]
    fn stats_count_events_and_narrowings() {
        let c = figure1(10);
        let mut nw = Narrower::new(&c);
        for &i in c.inputs() {
            nw.narrow_net(i, Signal::floating_input());
        }
        nw.reach_fixpoint();
        let st = nw.stats();
        assert!(st.events > 0);
        assert!(st.narrowings >= 8); // at least every net settles
    }

    #[test]
    fn seeded_narrower_matches_fresh_fixpoint() {
        let c = figure1(10);
        let s = c.outputs()[0];
        let mut fresh = Narrower::new(&c);
        for &i in c.inputs() {
            fresh.narrow_net(i, Signal::floating_input());
        }
        fresh.reach_fixpoint();
        let base = fresh.domains().to_vec();
        // Seeding from the base fixpoint and then adding the δ constraint
        // reaches the same greatest fixpoint as narrowing from scratch.
        let mut seeded = Narrower::with_domains(&c, &base);
        seeded.narrow_net(s, Signal::violation(Time::new(60)));
        seeded.reach_fixpoint();
        let mut scratch = Narrower::new(&c);
        for &i in c.inputs() {
            scratch.narrow_net(i, Signal::floating_input());
        }
        scratch.narrow_net(s, Signal::violation(Time::new(60)));
        scratch.reach_fixpoint();
        assert_eq!(seeded.domains(), scratch.domains());
    }

    #[test]
    fn rollback_then_renarrow_schedules_again() {
        // After a rollback the queued flags of the drained gates must be
        // reset, or re-narrowing the same nets would never re-enqueue their
        // constraints and the fixpoint would silently be missed.
        let c = figure1(10);
        let s = c.outputs()[0];
        let mut nw = Narrower::new(&c);
        for &i in c.inputs() {
            nw.narrow_net(i, Signal::floating_input());
        }
        nw.reach_fixpoint();
        let mark = nw.checkpoint();
        nw.narrow_net(s, Signal::violation(Time::new(61)));
        assert_eq!(nw.reach_fixpoint(), FixpointResult::Contradiction);
        nw.rollback(mark);
        nw.narrow_net(s, Signal::violation(Time::new(60)));
        let before = nw.stats().events;
        assert_eq!(nw.reach_fixpoint(), FixpointResult::Fixpoint);
        assert!(nw.stats().events > before, "constraints were re-scheduled");
        assert!(!nw.domain(s).is_empty());
    }

    #[test]
    fn schedule_all_reaches_same_fixpoint() {
        let c = figure1(10);
        let s = c.outputs()[0];
        let run = |schedule_all: bool| {
            let mut nw = Narrower::new(&c);
            for &i in c.inputs() {
                nw.narrow_net(i, Signal::floating_input());
            }
            nw.narrow_net(s, Signal::violation(Time::new(55)));
            if schedule_all {
                nw.schedule_all();
            }
            nw.reach_fixpoint();
            nw.domains().to_vec()
        };
        assert_eq!(run(false), run(true));
    }

    /// Stats are schedule-independent across backtracking: the counter
    /// *increments* of a checkpoint → narrow → fixpoint pass are identical
    /// whether or not an earlier pass ran and was rolled back, and match a
    /// fresh narrower that never backtracked. Events drained by the
    /// rollback's queue clear must not leak into any counter.
    #[test]
    fn stats_increments_identical_with_and_without_backtracking() {
        let c = figure1(10);
        let s = c.outputs()[0];
        let base = {
            let mut nw = Narrower::new(&c);
            for &i in c.inputs() {
                nw.narrow_net(i, Signal::floating_input());
            }
            nw.reach_fixpoint();
            nw.domains().to_vec()
        };
        let delta_pass = |nw: &mut Narrower<'_>, delta: i64| -> SolverStats {
            let before = nw.stats();
            let mark = nw.checkpoint();
            nw.narrow_net(s, Signal::violation(Time::new(delta)));
            nw.reach_fixpoint();
            nw.rollback(mark);
            nw.stats().since(&before)
        };
        // One narrower: a δ = 61 contradiction pass (rolled back, queue
        // drained mid-flight), then a δ = 60 pass.
        let mut backtracked = Narrower::with_domains(&c, &base);
        let _ = delta_pass(&mut backtracked, 61);
        let with_backtrack = delta_pass(&mut backtracked, 60);
        // Fresh narrower: only the δ = 60 pass, never backtracked.
        let mut fresh = Narrower::with_domains(&c, &base);
        let without_backtrack = delta_pass(&mut fresh, 60);
        assert_eq!(with_backtrack, without_backtrack);
        // And re-running the same pass on the backtracked narrower again
        // yields the same increments once more (rollback is transparent).
        assert_eq!(delta_pass(&mut backtracked, 60), without_backtrack);
    }
}
