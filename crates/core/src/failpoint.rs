//! Test-only fault injection (the `failpoints` cargo feature).
//!
//! A failpoint is a named site in the pipeline (e.g. `check::narrowing`,
//! `check::case-analysis`) where a test can inject a panic or an artificial
//! stall, so the batch runner's panic isolation and the budget's deadline
//! path are exercised by real faults instead of hand-mocked ones. Without
//! the feature every hook compiles to an empty inline function — zero cost
//! and zero behavior change in production builds.
//!
//! The registry is process-global; tests that configure failpoints must
//! serialize themselves (e.g. behind a shared `Mutex`) and call
//! [`clear_all`] when done.

#[cfg(feature = "failpoints")]
mod imp {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    use std::time::Duration;

    /// What an armed failpoint does when hit.
    #[derive(Clone, Debug)]
    pub enum FailAction {
        /// Panic with the given message.
        Panic(String),
        /// Sleep for the given duration, then continue normally.
        Stall(Duration),
        /// Signal the site to simulate a failure in a site-specific way
        /// (e.g. the serve layer drops the connection instead of
        /// replying). Only observable through [`hit_flagged`]; plain
        /// [`hit`] sites ignore it.
        Flag,
    }

    #[derive(Clone, Debug)]
    struct Armed {
        /// Only fire when the hit's context (e.g. the checked output's
        /// name) matches; `None` fires on every hit.
        context: Option<String>,
        action: FailAction,
    }

    fn registry() -> &'static Mutex<HashMap<String, Armed>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Armed>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// Arms `point` with `action`, optionally filtered to hits whose
    /// context equals `context`. Re-arming replaces the previous action.
    pub fn set(point: &str, context: Option<&str>, action: FailAction) {
        registry().lock().expect("failpoint registry").insert(
            point.to_string(),
            Armed {
                context: context.map(str::to_string),
                action,
            },
        );
    }

    /// Disarms every failpoint.
    pub fn clear_all() {
        registry().lock().expect("failpoint registry").clear();
    }

    /// Looks up the action armed for a `(point, context)` hit, if any.
    fn armed_action(point: &str, context: &str) -> Option<FailAction> {
        let reg = registry().lock().expect("failpoint registry");
        match reg.get(point) {
            Some(armed) if armed.context.as_deref().is_none_or(|c| c == context) => {
                Some(armed.action.clone())
            }
            _ => None,
        }
    }

    /// Called by the pipeline at each instrumented site. A [`Flag`]
    /// action is ignored here — only [`hit_flagged`] sites can act on it.
    ///
    /// [`Flag`]: FailAction::Flag
    pub fn hit(point: &str, context: &str) {
        match armed_action(point, context) {
            Some(FailAction::Panic(message)) => {
                panic!("failpoint {point} ({context}): {message}")
            }
            Some(FailAction::Stall(duration)) => std::thread::sleep(duration),
            Some(FailAction::Flag) | None => {}
        }
    }

    /// Like [`hit`], but additionally reports whether the site was armed
    /// with [`FailAction::Flag`] — the site then simulates a failure in
    /// whatever way is native to it (the serve layer, for example, drops
    /// the connection instead of replying). Panic and stall actions
    /// behave exactly as in [`hit`] and return `false`.
    pub fn hit_flagged(point: &str, context: &str) -> bool {
        match armed_action(point, context) {
            Some(FailAction::Flag) => true,
            Some(FailAction::Panic(message)) => {
                panic!("failpoint {point} ({context}): {message}")
            }
            Some(FailAction::Stall(duration)) => {
                std::thread::sleep(duration);
                false
            }
            None => false,
        }
    }
}

#[cfg(feature = "failpoints")]
pub use imp::{clear_all, hit, hit_flagged, set, FailAction};

/// No-op hook when the `failpoints` feature is off.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn hit(_point: &str, _context: &str) {}

/// No-op flag query when the `failpoints` feature is off: never armed.
///
/// Exported unconditionally so downstream crates (the serve tier's chaos
/// layer) can instrument sites without growing a feature of their own —
/// the hook is one inlined `false` until something in the build graph
/// turns `ltt-core/failpoints` on.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn hit_flagged(_point: &str, _context: &str) -> bool {
    false
}
