//! Gate constraint projections (§3.2): closed-form interval narrowing rules
//! derived from the timed Boolean function of each gate.
//!
//! All rules reduce to relations between the *last-difference times* `LD`
//! of the gate's terminal waveforms (with `d` the gate's max delay):
//!
//! * **all inputs settle non-controlling** ⇒ `LD(s) = d + max_i LD(a_i)`
//!   (exact);
//! * **some inputs settle controlling** (set `C`) ⇒
//!   `LD(s) ≤ d + min_{i∈C} LD(a_i)`, and if `C = {j}` and `a_j` settles
//!   strictly last, `LD(s) = d + LD(a_j)` (exact) — the refinement that
//!   eliminates "blocking" controlling waveforms on side inputs and pulls
//!   the last-transition interval down the violating path (§4, Fig. 3);
//! * **XOR family** ⇒ `LD(s) ≤ d + max(LD(a), LD(b))`, exact when the two
//!   last-transition intervals are disjoint;
//! * **unary gates** ⇒ `LD(s) = d + LD(a)` (exact).
//!
//! Solving these relations over the last-transition intervals yields, for
//! every gate kind, a *forward* projection (narrow the output domain) and a
//! *backward* projection (narrow each input domain). Soundness — no
//! projection ever removes a waveform that participates in a solution — is
//! property-tested against the exact dense-window oracle in
//! `tests/projection_soundness.rs`.
//!
//! # Hot-path layout
//!
//! The solver calls [`project_into`] with a reusable scratch vector, so the
//! general rules allocate nothing per event. The overwhelmingly common
//! shapes — unary gates and 2-input AND/OR/NAND/NOR — additionally bypass
//! the general machinery through the straight-line kernels
//! [`project_unary2`] and [`project_and2`]; the latter is table-driven on
//! the controlling/controlled class pair of the gate kind and is checked
//! for exact equivalence with the general rule by `kernel_matches_general`
//! below. The public [`project`] keeps the original allocating signature
//! for tests and external callers.

use ltt_netlist::GateKind;
use ltt_waveform::{Aw, Level, Signal, Time};

/// The result of projecting one gate constraint: narrowing targets to be
/// intersected into the current domains.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GateProjection {
    /// Target for the output domain.
    pub output: Signal,
    /// Targets for each input domain, in gate input order.
    pub inputs: Vec<Signal>,
}

/// Computes the projection of a gate constraint given the current domains.
///
/// `inputs` are the input net domains in gate order, `output` the output
/// net domain, `d` the gate's maximum delay. The returned targets are
/// *sound*: intersecting them into the current domains never removes a
/// waveform that is part of a consistent `(a_1, …, a_k, s)` tuple.
///
/// # Panics
///
/// Panics if `inputs.len()` is not a valid arity for `kind`.
pub fn project(kind: GateKind, d: i64, inputs: &[Signal], output: Signal) -> GateProjection {
    let mut targets = Vec::with_capacity(inputs.len());
    let output = project_into(kind, d, inputs, output, &mut targets);
    GateProjection {
        output,
        inputs: targets,
    }
}

/// Allocation-free form of [`project`]: clears `targets` and fills it with
/// one narrowing target per input (gate order), returning the output
/// target. The solver threads one scratch vector through every event.
///
/// # Panics
///
/// Panics if `inputs.len()` is not a valid arity for `kind`.
pub(crate) fn project_into(
    kind: GateKind,
    d: i64,
    inputs: &[Signal],
    output: Signal,
    targets: &mut Vec<Signal>,
) -> Signal {
    assert!(kind.arity_ok(inputs.len()), "bad arity for {kind}");
    targets.clear();
    // An empty terminal makes the whole constraint unsatisfiable.
    if output.is_empty() || inputs.iter().any(|i| i.is_empty()) {
        targets.resize(inputs.len(), Signal::EMPTY);
        return Signal::EMPTY;
    }
    match kind {
        GateKind::Not | GateKind::Buffer | GateKind::Delay => {
            let (out_t, in_t) = project_unary2(kind, d, inputs[0], output);
            targets.push(in_t);
            out_t
        }
        GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor if inputs.len() == 2 => {
            let (out_t, a_t, b_t) = project_and2(kind, d, inputs[0], inputs[1], output);
            targets.push(a_t);
            targets.push(b_t);
            out_t
        }
        GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
            project_and_family(kind, d, inputs, output, targets)
        }
        GateKind::Xor | GateKind::Xnor => project_xor_family(kind, d, inputs, output, targets),
        GateKind::Mux => project_mux(d, inputs, output, targets),
    }
}

/// Straight-line projection kernel for unary gates (`LD(s) = d + LD(a)`,
/// exact in both directions). Returns `(output target, input target)`.
#[inline]
pub(crate) fn project_unary2(
    kind: GateKind,
    d: i64,
    input: Signal,
    output: Signal,
) -> (Signal, Signal) {
    if output.is_empty() || input.is_empty() {
        return (Signal::EMPTY, Signal::EMPTY);
    }
    let map = |v: Level| Level::from_bool(kind.eval(&[v.to_bool()]));
    let mut out_new = Signal::EMPTY;
    let mut in_new = Signal::EMPTY;
    for v in Level::BOTH {
        let ov = map(v);
        out_new[ov] = output[ov].intersect(input[v].shift(d));
        in_new[v] = input[v].intersect(output[ov].shift(-d));
    }
    (out_new, in_new)
}

/// The controlling input class and controlled output class of an
/// AND-family kind — the only two facts the kernels below depend on.
#[inline]
fn and_family_classes(kind: GateKind) -> (Level, Level) {
    match kind {
        GateKind::And => (Level::Zero, Level::Zero),
        GateKind::Nand => (Level::Zero, Level::One),
        GateKind::Or => (Level::One, Level::One),
        GateKind::Nor => (Level::One, Level::Zero),
        _ => unreachable!("not an AND-family kind"),
    }
}

/// Straight-line projection kernel for 2-input AND/OR/NAND/NOR — the
/// dominant gate shape. Table-driven on the `(controlling class,
/// controlled output class)` pair, then pure scalar interval arithmetic:
/// no loops, no index sets, no allocation. Exactly equivalent to
/// [`project_and_family`] at `k = 2` (equivalence is exhaustively checked
/// over an interval grid by the `kernel_matches_general` test).
///
/// Returns `(output target, input-0 target, input-1 target)`.
#[inline]
pub(crate) fn project_and2(
    kind: GateKind,
    d: i64,
    a: Signal,
    b: Signal,
    output: Signal,
) -> (Signal, Signal, Signal) {
    if output.is_empty() || a.is_empty() || b.is_empty() {
        return (Signal::EMPTY, Signal::EMPTY, Signal::EMPTY);
    }
    let (c, out_c) = and_family_classes(kind);
    let nc = !c;
    let out_nc = !out_c;
    let (a_c, a_nc) = (a[c], a[nc]);
    let (b_c, b_nc) = (b[c], b[nc]);

    // ---- Forward: narrow the output -----------------------------------
    // All-non-controlling combo: LD(s) = d + max(LD_a, LD_b), exact.
    let all_nc = if !a_nc.is_empty() && !b_nc.is_empty() {
        Aw::new(a_nc.lmin().max(b_nc.lmin()), a_nc.max().max(b_nc.max())).shift(d)
    } else {
        Aw::EMPTY
    };

    // Some-controlling combos: LD(s) ≤ d + min_{i∈C} LD_i. An input is
    // *forced* controlling when its nc class is empty, *capable* of
    // controlling when its c class is non-empty.
    let a_forced = a_nc.is_empty();
    let b_forced = b_nc.is_empty();
    let a_cap = !a_c.is_empty();
    let b_cap = !b_c.is_empty();
    let some_c = {
        let ub = if a_forced || b_forced {
            // Every feasible combo includes all forced inputs (their c
            // class is non-empty, else the early-empty return fired).
            let mut m = Time::POS_INF;
            if a_forced {
                m = m.min(a_c.max());
            }
            if b_forced {
                m = m.min(b_c.max());
            }
            Some(m)
        } else if a_cap || b_cap {
            // Best (loosest) combo is a singleton {i}: max over capable.
            let ma = if a_cap { a_c.max() } else { Time::NEG_INF };
            let mb = if b_cap { b_c.max() } else { Time::NEG_INF };
            Some(ma.max(mb))
        } else {
            None
        };
        match ub {
            None => Aw::EMPTY,
            Some(hi) => {
                // Exactness refinement: a unique controlling candidate that
                // settles strictly last forces LD(s) = d + LD_j.
                let lo = if a_cap != b_cap {
                    let (j_c, others_latest) = if a_cap {
                        (a_c, b_nc.max())
                    } else {
                        (b_c, a_nc.max())
                    };
                    if j_c.lmin() > others_latest {
                        j_c.lmin()
                    } else {
                        Time::NEG_INF
                    }
                } else {
                    Time::NEG_INF
                };
                Aw::new(lo, hi).shift(d)
            }
        }
    };

    let mut out_new = Signal::EMPTY;
    out_new[out_nc] = output[out_nc].intersect(all_nc);
    out_new[out_c] = output[out_c].intersect(some_c);

    // ---- Backward: narrow each input -----------------------------------
    let s_c = output[out_c];
    let s_nc = output[out_nc];
    // One input's backward targets, with `o_*` the *other* input's classes.
    let back = |j_c: Aw, j_nc: Aw, o_c: Aw, o_nc: Aw| -> Signal {
        // Class c of input j: participates only in some-controlling combos
        // (output class out_c), always with j ∈ C, so LD(s) ≤ d + LD_j.
        let cj = if s_c.is_empty() {
            Aw::EMPTY
        } else {
            let lo = s_c.lmin() - d;
            let hi = if o_nc.is_empty() {
                // The other input is forced controlling: the combo bound is
                // ≤ d + LD_other; if even that misses the output's earliest
                // last transition, no combo is feasible.
                if o_c.max() + d >= s_c.lmin() {
                    Some(Time::POS_INF)
                } else {
                    None
                }
            } else if !o_c.is_empty() && o_c.max() + d >= s_c.lmin() {
                // The other input can be controlling and late enough to
                // carry the output's last transition: j settles whenever.
                Some(Time::POS_INF)
            } else {
                // j is the only possible (timely) controlling input; the
                // exactness refinement caps how late it may settle.
                Some(o_nc.max().max(s_c.max() - d))
            };
            match hi {
                None => Aw::EMPTY,
                Some(h) => j_c.intersect(Aw::new(lo, h)),
            }
        };

        // Class nc of input j: either some other input masks j entirely
        // (other-controlling combo feasible — no narrowing possible), or j
        // participates in the all-nc combo only.
        let other_ctrl_feasible = !s_c.is_empty() && !o_c.is_empty() && o_c.max() + d >= s_c.lmin();
        let nj = if other_ctrl_feasible {
            j_nc
        } else if s_nc.is_empty() || o_nc.is_empty() {
            Aw::EMPTY
        } else {
            let hi = s_nc.max() - d;
            let lo = if o_nc.max() < s_nc.lmin() - d {
                s_nc.lmin() - d
            } else {
                Time::NEG_INF
            };
            j_nc.intersect(Aw::new(lo, hi))
        };

        let mut sig = Signal::EMPTY;
        sig[c] = cj;
        sig[nc] = nj;
        sig
    };

    (
        out_new,
        back(a_c, a_nc, b_c, b_nc),
        back(b_c, b_nc, a_c, a_nc),
    )
}

/// The multiplexer constraint model — the "complex gate" extension the
/// paper's conclusion announces. `o(t) = s(t−d) ? b(t−d) : a(t−d)`, with
/// per-class-combo relations on the last-difference times:
///
/// * once the select is stable the output follows the selected data input,
///   so `LD(o) ≤ d + max(LD_s, LD_sel)`;
/// * if both data inputs settle to the *same* value, their stability alone
///   pins the output: `LD(o) ≤ d + max(LD_a, LD_b)`;
/// * the selected data input settling strictly after the select forces a
///   transition (`LD(o) = d + LD_sel` when `LD_sel > LD_s`), as does the
///   select settling strictly last when the data inputs disagree.
fn project_mux(d: i64, inputs: &[Signal], output: Signal, targets: &mut Vec<Signal>) -> Signal {
    let (sig_s, sig_a, sig_b) = (inputs[0], inputs[1], inputs[2]);
    let mut out_acc = [Aw::EMPTY; 2];
    let mut in_acc = [[Aw::EMPTY; 2]; 3];

    for combo in 0u8..8 {
        let vs = Level::from_bool(combo & 1 == 1);
        let va = Level::from_bool(combo & 2 != 0);
        let vb = Level::from_bool(combo & 4 != 0);
        let (i_s, i_a, i_b) = (sig_s[vs], sig_a[va], sig_b[vb]);
        if i_s.is_empty() || i_a.is_empty() || i_b.is_empty() {
            continue;
        }
        let vo = if vs.to_bool() { vb } else { va };
        let (i_sel, i_oth) = if vs.to_bool() { (i_b, i_a) } else { (i_a, i_b) };

        // ---- Forward -----------------------------------------------------
        let mut hi = i_s.max().max(i_sel.max());
        if va == vb {
            hi = hi.min(i_a.max().max(i_b.max()));
        }
        let mut lo = Time::NEG_INF;
        // Selected data input settles strictly after the select: forced.
        if i_sel.lmin() > i_s.max() {
            lo = lo.max(i_sel.lmin());
        }
        // Select settles strictly after both data inputs, which disagree.
        if va != vb && i_s.lmin() > i_a.max().max(i_b.max()) {
            lo = lo.max(i_s.lmin());
        }
        let contribution = Aw::new(lo, hi).shift(d).intersect(output[vo]);
        out_acc[vo.index()] = out_acc[vo.index()].union(contribution);

        // ---- Backward ----------------------------------------------------
        let s_v = output[vo];
        if s_v.is_empty() {
            continue;
        }
        let needs = s_v.lmin() - d;
        // Selected data input: someone else (select, or the other data
        // input while the select is undecided) can carry the late
        // transition only if the select can still be unstable that late.
        let sel_lo = if i_s.max() >= needs {
            Time::NEG_INF
        } else {
            needs
        };
        // Settling later than the select forces an output transition.
        let sel_hi = i_s.max().max(s_v.max() - d);
        let sel_feasible = i_sel.intersect(Aw::new(sel_lo, sel_hi));
        let sel_idx = if vs.to_bool() { 2 } else { 1 };
        in_acc[sel_idx][if vs.to_bool() { vb } else { va }.index()] =
            in_acc[sel_idx][if vs.to_bool() { vb } else { va }.index()].union(sel_feasible);

        // Non-selected data input: visible only while the select is
        // undecided; it can always settle whenever (masked by the select
        // going stable), but if nothing else can be late the combo still
        // needs *some* carrier — handled via the select/selected bounds.
        let oth_idx = if vs.to_bool() { 1 } else { 2 };
        let oth_level = if vs.to_bool() { va } else { vb };
        // No narrowing beyond feasibility of the combo itself.
        in_acc[oth_idx][oth_level.index()] = in_acc[oth_idx][oth_level.index()].union(i_oth);

        // Select: data inputs can carry (selected one at any time; either
        // one while the select is undecided), so the select only *must*
        // carry when neither data input can be late enough.
        let data_late = i_a.max().max(i_b.max());
        let s_lo = if data_late >= needs {
            Time::NEG_INF
        } else {
            needs
        };
        // Select settling strictly after disagreeing data inputs forces a
        // transition; with agreeing data inputs it is masked entirely.
        let s_hi = if va != vb {
            data_late.max(s_v.max() - d)
        } else {
            Time::POS_INF
        };
        let s_feasible = i_s.intersect(Aw::new(s_lo, s_hi));
        in_acc[0][vs.index()] = in_acc[0][vs.index()].union(s_feasible);
    }

    let mut out_new = Signal::EMPTY;
    for v in Level::BOTH {
        out_new[v] = output[v].intersect(out_acc[v.index()]);
    }
    for j in 0..3 {
        let mut sig = Signal::EMPTY;
        for v in Level::BOTH {
            sig[v] = inputs[j][v].intersect(in_acc[j][v.index()]);
        }
        targets.push(sig);
    }
    out_new
}

/// General k-input AND-family rule. Index sets (forced / controlling-
/// capable inputs) are folded on the fly instead of materialized, so the
/// path allocates nothing beyond the caller's `targets` vector.
fn project_and_family(
    kind: GateKind,
    d: i64,
    inputs: &[Signal],
    output: Signal,
    targets: &mut Vec<Signal>,
) -> Signal {
    let (c, out_c) = and_family_classes(kind);
    let nc = !c;
    let out_nc = !out_c;
    let k = inputs.len();

    // ---- Forward: narrow the output -----------------------------------
    // All-non-controlling combo: LD(s) = d + max_i LD_i, exact.
    let all_nc = if inputs.iter().all(|i| !i[nc].is_empty()) {
        let lo = inputs.iter().map(|i| i[nc].lmin()).max().expect("k >= 1");
        let hi = inputs.iter().map(|i| i[nc].max()).max().expect("k >= 1");
        Aw::new(lo, hi).shift(d)
    } else {
        Aw::EMPTY
    };

    // Some-controlling combos: LD(s) ≤ d + min_{i∈C} LD_i.
    // Forced inputs settle controlling (their nc class is empty);
    // controlling-capable inputs have a non-empty c class.
    let forced_min: Option<Time> = (0..k)
        .filter(|&i| inputs[i][nc].is_empty())
        .map(|i| inputs[i][c].max())
        .min();
    let mut ctrl_count = 0usize;
    let mut ctrl_only = 0usize;
    let mut ctrl_max: Option<Time> = None;
    for (i, input) in inputs.iter().enumerate() {
        if !input[c].is_empty() {
            if ctrl_count == 0 {
                ctrl_only = i;
            }
            ctrl_count += 1;
            let m = input[c].max();
            ctrl_max = Some(ctrl_max.map_or(m, |cur| cur.max(m)));
        }
    }
    let some_c = {
        let ub = if forced_min.is_some() {
            // Every feasible combo includes all forced inputs; all forced
            // inputs have a non-empty c class (else the early-empty return
            // in `project_into` fired).
            forced_min
        } else {
            // Best (loosest) combo is a singleton {i}.
            ctrl_max
        };
        match ub {
            None => Aw::EMPTY,
            Some(hi) => {
                // Exactness refinement: a unique controlling candidate that
                // settles strictly last forces LD(s) = d + LD_j.
                let lo = if ctrl_count == 1 {
                    let j = ctrl_only;
                    let others_latest = (0..k)
                        .filter(|&i| i != j)
                        .map(|i| inputs[i][nc].max())
                        .max()
                        .unwrap_or(Time::NEG_INF);
                    if inputs[j][c].lmin() > others_latest {
                        inputs[j][c].lmin()
                    } else {
                        Time::NEG_INF
                    }
                } else {
                    Time::NEG_INF
                };
                Aw::new(lo, hi).shift(d)
            }
        }
    };

    let mut out_new = Signal::EMPTY;
    out_new[out_nc] = output[out_nc].intersect(all_nc);
    out_new[out_c] = output[out_c].intersect(some_c);

    // ---- Backward: narrow each input -----------------------------------
    let s_c = output[out_c];
    let s_nc = output[out_nc];
    for j in 0..k {
        let others = || (0..k).filter(move |&i| i != j);
        // Minimum controlling bound over the *other* forced inputs, used by
        // both classes of input j.
        let forced_others_min: Option<Time> = others()
            .filter(|&i| inputs[i][nc].is_empty())
            .map(|i| inputs[i][c].max())
            .min();

        // Class c of input j: participates only in some-controlling combos
        // (output class out_c), always with j ∈ C, so LD(s) ≤ d + LD_j.
        let cj = if s_c.is_empty() {
            Aw::EMPTY
        } else {
            let lo = s_c.lmin() - d;
            let hi = if let Some(m) = forced_others_min {
                // Every combo's bound is ≤ d + m; if even that misses the
                // output's earliest last transition, no combo is feasible.
                if m + d >= s_c.lmin() {
                    Some(Time::POS_INF)
                } else {
                    None
                }
            } else if others()
                .any(|i| !inputs[i][c].is_empty() && inputs[i][c].max() + d >= s_c.lmin())
            {
                // Another input can be controlling and late enough to carry
                // the output's last transition: j may settle whenever.
                Some(Time::POS_INF)
            } else {
                // j is the only possible (timely) controlling input; the
                // exactness refinement caps how late it may settle.
                let m_nc = others()
                    .map(|i| inputs[i][nc].max())
                    .max()
                    .unwrap_or(Time::NEG_INF);
                Some(m_nc.max(s_c.max() - d))
            };
            match hi {
                None => Aw::EMPTY,
                Some(h) => inputs[j][c].intersect(Aw::new(lo, h)),
            }
        };

        // Class nc of input j.
        let combo_other_ctrl_feasible = !s_c.is_empty()
            && if let Some(m) = forced_others_min {
                m + d >= s_c.lmin()
            } else {
                others().any(|i| !inputs[i][c].is_empty() && inputs[i][c].max() + d >= s_c.lmin())
            };
        let nj = if combo_other_ctrl_feasible {
            // Some other input can mask j entirely: no narrowing possible
            // on the non-controlling class (paper Fig. 3: "no narrowing is
            // possible on class 1").
            inputs[j][nc]
        } else {
            let combo_all_nc_feasible =
                !s_nc.is_empty() && others().all(|i| !inputs[i][nc].is_empty());
            if !combo_all_nc_feasible {
                Aw::EMPTY
            } else {
                let hi = s_nc.max() - d;
                let m = others()
                    .map(|i| inputs[i][nc].max())
                    .max()
                    .unwrap_or(Time::NEG_INF);
                let lo = if m < s_nc.lmin() - d {
                    s_nc.lmin() - d
                } else {
                    Time::NEG_INF
                };
                inputs[j][nc].intersect(Aw::new(lo, hi))
            }
        };

        let mut sig = Signal::EMPTY;
        sig[c] = cj;
        sig[nc] = nj;
        targets.push(sig);
    }

    out_new
}

fn project_xor_family(
    kind: GateKind,
    d: i64,
    inputs: &[Signal],
    output: Signal,
    targets: &mut Vec<Signal>,
) -> Signal {
    let pol = kind == GateKind::Xnor;
    let k = inputs.len();
    assert!(k <= 16, "XOR projection enumerates 2^k class combos");

    let mut out_acc = [Aw::EMPTY; 2];
    // Stack accumulator (k ≤ 16 asserted above): no per-call allocation.
    let mut in_acc = [[Aw::EMPTY; 2]; 16];

    // Enumerate class combos (v_1 … v_k).
    for combo in 0u32..(1u32 << k) {
        let class = |i: usize| Level::from_bool((combo >> i) & 1 == 1);
        let iv = |i: usize| inputs[i][class(i)];
        if (0..k).any(|i| iv(i).is_empty()) {
            continue;
        }
        let parity = (0..k).filter(|&i| class(i).to_bool()).count() % 2 == 1;
        let out_v = Level::from_bool(parity ^ pol);

        // Forward: LD(s) ≤ d + max_i LD_i; exact when one interval starts
        // after every other interval ends.
        let hi = (0..k).map(|i| iv(i).max()).max().expect("k >= 2");
        let lo = (0..k)
            .find(|&j| {
                let others_max = (0..k)
                    .filter(|&i| i != j)
                    .map(|i| iv(i).max())
                    .max()
                    .expect("k >= 2");
                iv(j).lmin() > others_max
            })
            .map(|j| iv(j).lmin())
            .unwrap_or(Time::NEG_INF);
        let contribution = Aw::new(lo, hi).shift(d).intersect(output[out_v]);
        out_acc[out_v.index()] = out_acc[out_v.index()].union(contribution);

        // Backward, per input j: reduce the others to their combined
        // last-arrival interval O = [max lmins, max maxes]; then
        //   * if O.max < S_v.lmin − d, input j must carry the output's last
        //     transition: LD_j ∈ [S_v.lmin − d, S_v.max − d];
        //   * otherwise LD_j ≤ max(S_v.max − d, O.max) (settling later than
        //     both would force a too-late output transition).
        let s_v = output[out_v];
        if s_v.is_empty() {
            continue;
        }
        for j in 0..k {
            let others_max = (0..k)
                .filter(|&i| i != j)
                .map(|i| iv(i).max())
                .max()
                .expect("k >= 2");
            let feasible = if others_max < s_v.lmin() - d {
                Aw::new(s_v.lmin() - d, s_v.max() - d)
            } else {
                Aw::new(Time::NEG_INF, (s_v.max() - d).max(others_max))
            };
            let feasible = iv(j).intersect(feasible);
            in_acc[j][class(j).index()] = in_acc[j][class(j).index()].union(feasible);
        }
    }

    let mut out_new = Signal::EMPTY;
    for v in Level::BOTH {
        out_new[v] = output[v].intersect(out_acc[v.index()]);
    }
    for j in 0..k {
        let mut sig = Signal::EMPTY;
        for v in Level::BOTH {
            sig[v] = inputs[j][v].intersect(in_acc[j][v.index()]);
        }
        targets.push(sig);
    }

    out_new
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aw(l: i64, m: i64) -> Aw {
        Aw::new(Time::new(l), Time::new(m))
    }

    fn before(m: i64) -> Aw {
        Aw::before(Time::new(m))
    }

    /// Paper Example 1: a 2-input AND with delay 0,
    /// `D_i = (0|_{−∞}^{33}, 1|_{50}^{100})`, `D_j = (0|_{25}^{75}, φ)`,
    /// `D_s = (0|_{35}^{125}, φ)` narrows to
    /// `D_i' = (φ, 1|_{50}^{100})`, `D_j' = (0|_{35}^{75}, φ)`,
    /// `D_s' = (0|_{35}^{75}, φ)`.
    #[test]
    fn paper_example_1() {
        let di = Signal::new(before(33), aw(50, 100));
        let dj = Signal::new(aw(25, 75), Aw::EMPTY);
        let ds = Signal::new(aw(35, 125), Aw::EMPTY);
        let p = project(GateKind::And, 0, &[di, dj], ds);
        assert_eq!(p.inputs[0], Signal::new(Aw::EMPTY, aw(50, 100)));
        assert_eq!(p.inputs[1], Signal::new(aw(35, 75), Aw::EMPTY));
        assert_eq!(p.output, Signal::new(aw(35, 75), Aw::EMPTY));
    }

    #[test]
    fn and_forward_all_nc_is_shifted_max() {
        // Both inputs settle to 1 in [0,5] and [3,8] ⇒ output class 1 in
        // [3+d, 8+d].
        let a = Signal::single_class(Level::One, aw(0, 5));
        let b = Signal::single_class(Level::One, aw(3, 8));
        let p = project(GateKind::And, 10, &[a, b], Signal::FULL);
        assert_eq!(p.output[Level::One], aw(13, 18));
        assert!(p.output[Level::Zero].is_empty());
    }

    #[test]
    fn and_forward_some_ctrl_upper_bound() {
        // Input a may settle to 0 by 5; b settles to 1 by 8. Output class 0
        // can transition no later than 5 + d.
        let a = Signal::new(before(5), before(5));
        let b = Signal::single_class(Level::One, before(8));
        let p = project(GateKind::And, 10, &[a, b], Signal::FULL);
        assert_eq!(p.output[Level::Zero], before(15));
        assert_eq!(p.output[Level::One], before(18));
    }

    #[test]
    fn and_forward_unique_late_ctrl_is_exact() {
        // Only a can settle controlling, and strictly later than b's settle:
        // the 1→0 transition of the output happens exactly d after a's.
        let a = Signal::single_class(Level::Zero, aw(20, 30));
        let b = Signal::single_class(Level::One, before(5));
        let p = project(GateKind::And, 10, &[a, b], Signal::FULL);
        assert_eq!(p.output[Level::Zero], aw(30, 40));
        assert!(p.output[Level::One].is_empty());
    }

    #[test]
    fn nand_inverts_output_classes() {
        let a = Signal::single_class(Level::One, aw(0, 5));
        let b = Signal::single_class(Level::One, aw(3, 8));
        let p = project(GateKind::Nand, 10, &[a, b], Signal::FULL);
        assert_eq!(p.output[Level::Zero], aw(13, 18));
        assert!(p.output[Level::One].is_empty());
    }

    #[test]
    fn backward_removes_blocking_controlling_class() {
        // Example 2's decision at gate g8 = OR(n7, n5), delay 10: the
        // output must transition at or after 61; n5 settles by 50, so n5's
        // controlling (1) class is eliminated and its 0 class survives.
        let n7 = Signal::new(before(60), before(60));
        let n5 = Signal::new(before(50), before(50));
        let s = Signal::violation(Time::new(61));
        let p = project(GateKind::Or, 10, &[n7, n5], s);
        // n5's class 1 (controlling for OR) cannot carry a transition at 61:
        // 50 + 10 < 61.
        assert!(p.inputs[1][Level::One].is_empty());
        // n5 class 0 survives (it does not block).
        assert!(!p.inputs[1][Level::Zero].is_empty());
        // n7 must now carry the last transition: both classes narrowed to
        // lmin = 51.
        assert_eq!(p.inputs[0][Level::Zero], aw(51, 60));
        assert_eq!(p.inputs[0][Level::One], aw(51, 60));
    }

    #[test]
    fn backward_ambiguous_side_inputs_narrow_controlling_lmin_only() {
        // Figure 3: NAND with two inputs N, P that can both carry the
        // violation. The controlling class (1 for NAND? no — controlling
        // for NAND is 0) of each input gets its lmin raised; the
        // non-controlling class is not narrowed.
        let delta = 100;
        let n = Signal::new(before(95), before(95));
        let p_in = Signal::new(before(95), before(95));
        let s = Signal::violation(Time::new(delta));
        let p = project(GateKind::Nand, 10, &[n, p_in], s);
        for inp in &p.inputs {
            // Controlling class 0: waveforms stable before δ − d removed.
            assert_eq!(inp[Level::Zero], aw(90, 95));
            // Non-controlling class 1: untouched (the other input may carry).
            assert_eq!(inp[Level::One], before(95));
        }
    }

    #[test]
    fn backward_only_ctrl_candidate_gets_upper_bound() {
        // OR gate: s settles to 1 no later than 20 (class 1 ⊆ [-inf, 20]).
        // Input a is the only one that can settle to 1; b settles to 0 by 2.
        // If a settled later than 20 − d the output would transition too
        // late, so a's class-1 max is capped.
        let a = Signal::new(before(50), before(50));
        let b = Signal::single_class(Level::Zero, before(2));
        let s = Signal::new(Aw::EMPTY, before(20));
        let p = project(GateKind::Or, 10, &[a, b], s);
        assert_eq!(p.inputs[0][Level::One], before(10));
        // a cannot settle to 0 at all (the output would be 0).
        assert!(p.inputs[0][Level::Zero].is_empty());
    }

    #[test]
    fn unary_shifts_exactly() {
        let input = Signal::new(aw(5, 9), aw(1, 3));
        let p = project(GateKind::Not, 10, &[input], Signal::FULL);
        // NOT maps class 0 → class 1.
        assert_eq!(p.output[Level::One], aw(15, 19));
        assert_eq!(p.output[Level::Zero], aw(11, 13));
        // Backward through a violation: only late-enough waveforms remain.
        let p = project(
            GateKind::Buffer,
            10,
            &[input],
            Signal::violation(Time::new(16)),
        );
        assert_eq!(p.inputs[0][Level::Zero], aw(6, 9));
        assert!(p.inputs[0][Level::One].is_empty());
    }

    #[test]
    fn xor_forward_disjoint_intervals_exact() {
        let a = Signal::single_class(Level::One, aw(20, 30));
        let b = Signal::single_class(Level::One, before(5));
        let p = project(GateKind::Xor, 10, &[a, b], Signal::FULL);
        // 1 ⊕ 1 = 0, and a arrives strictly last ⇒ exact interval.
        assert_eq!(p.output[Level::Zero], aw(30, 40));
        assert!(p.output[Level::One].is_empty());
    }

    #[test]
    fn xor_forward_overlapping_intervals_conservative() {
        let a = Signal::single_class(Level::One, aw(0, 30));
        let b = Signal::single_class(Level::Zero, aw(0, 25));
        let p = project(GateKind::Xor, 10, &[a, b], Signal::FULL);
        // 1 ⊕ 0 = 1; no forced lower bound.
        assert_eq!(p.output[Level::One], before(40));
        assert!(p.output[Level::Zero].is_empty());
    }

    #[test]
    fn xor_backward_requires_late_carrier() {
        // Output must transition at/after 50; b settles by 5; so a must
        // carry: both classes of a get lmin ≥ 50 − 10 = 40.
        let a = Signal::new(before(100), before(100));
        let b = Signal::new(before(5), before(5));
        let s = Signal::violation(Time::new(50));
        let p = project(GateKind::Xor, 10, &[a, b], s);
        for v in Level::BOTH {
            assert_eq!(p.inputs[0][v], aw(40, 100));
        }
        // b is unconstrained below its settle (it cannot carry anyway).
        for v in Level::BOTH {
            assert_eq!(p.inputs[1][v], before(5));
        }
    }

    #[test]
    fn xnor_parity_mapping() {
        let a = Signal::single_class(Level::One, before(5));
        let b = Signal::single_class(Level::One, before(5));
        let p = project(GateKind::Xnor, 10, &[a, b], Signal::FULL);
        assert!(!p.output[Level::One].is_empty());
        assert!(p.output[Level::Zero].is_empty());
    }

    #[test]
    fn three_input_xor_parity() {
        let one = Signal::single_class(Level::One, before(5));
        let p = project(GateKind::Xor, 10, &[one, one, one], Signal::FULL);
        // 1⊕1⊕1 = 1.
        assert!(!p.output[Level::One].is_empty());
        assert!(p.output[Level::Zero].is_empty());
    }

    #[test]
    fn mux_forward_select_stable_follows_selected() {
        // sel settles to 0 by time 5; a settles to 1 in [20, 30]; b free.
        // Output follows a: class 1 in [20+d, 30+d].
        let sel = Signal::single_class(Level::Zero, before(5));
        let a = Signal::single_class(Level::One, aw(20, 30));
        let b = Signal::new(before(50), before(50));
        let p = project(GateKind::Mux, 10, &[sel, a, b], Signal::FULL);
        assert_eq!(p.output[Level::One], aw(30, 40));
        assert!(p.output[Level::Zero].is_empty());
    }

    #[test]
    fn mux_forward_agreeing_data_masks_select() {
        // Both data inputs settle to 1 early; the select may settle late,
        // but the output is pinned once the data is stable.
        let sel = Signal::new(before(100), before(100));
        let a = Signal::single_class(Level::One, before(5));
        let b = Signal::single_class(Level::One, before(7));
        let p = project(GateKind::Mux, 10, &[sel, a, b], Signal::FULL);
        assert_eq!(p.output[Level::One], before(17));
        assert!(p.output[Level::Zero].is_empty());
    }

    #[test]
    fn mux_backward_selected_input_must_carry() {
        // Output must transition at/after 50; select and the other data
        // input settle early, so the selected data input must be late.
        let sel = Signal::single_class(Level::Zero, before(5));
        let a = Signal::new(before(100), before(100));
        let b = Signal::new(before(5), before(5));
        let o = Signal::violation(Time::new(50));
        let p = project(GateKind::Mux, 10, &[sel, a, b], o);
        for v in Level::BOTH {
            assert_eq!(p.inputs[1][v], aw(40, 100), "a class {v}");
        }
    }

    #[test]
    fn mux_backward_late_select_with_disagreeing_data() {
        // Data inputs settle early to opposite values; a late output
        // transition can only come from the select.
        let sel = Signal::new(before(100), before(100));
        let a = Signal::single_class(Level::Zero, before(5));
        let b = Signal::single_class(Level::One, before(5));
        let o = Signal::violation(Time::new(50));
        let p = project(GateKind::Mux, 10, &[sel, a, b], o);
        for v in Level::BOTH {
            assert_eq!(p.inputs[0][v], aw(40, 100), "sel class {v}");
        }
    }

    #[test]
    fn empty_terminal_empties_everything() {
        let a = Signal::FULL;
        let p = project(GateKind::And, 10, &[a, Signal::EMPTY], Signal::FULL);
        assert!(p.output.is_empty());
        assert!(p.inputs.iter().all(|i| i.is_empty()));
        let p = project(GateKind::And, 10, &[a, a], Signal::EMPTY);
        assert!(p.output.is_empty());
        assert!(p.inputs.iter().all(|i| i.is_empty()));
    }

    #[test]
    fn projection_never_widens() {
        // Narrowing property: targets ⊆ current domains.
        let a = Signal::new(aw(0, 10), aw(5, 15));
        let b = Signal::new(before(8), aw(2, 12));
        let s = Signal::new(aw(10, 30), before(25));
        for kind in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
        ] {
            let p = project(kind, 10, &[a, b], s);
            assert!(p.output.is_subset_of(s), "{kind} output");
            assert!(p.inputs[0].is_subset_of(a), "{kind} in0");
            assert!(p.inputs[1].is_subset_of(b), "{kind} in1");
        }
    }

    #[test]
    fn forced_controlling_other_infeasible_empties_ctrl_class() {
        // AND: b is forced controlling (nc empty) but settles too early to
        // carry the output's last transition ⇒ a's controlling class is
        // also infeasible (the combo bound is min over C).
        let a = Signal::new(before(100), before(100));
        let b = Signal::single_class(Level::Zero, before(2));
        let s = Signal::single_class(Level::Zero, aw(50, 90));
        let p = project(GateKind::And, 10, &[a, b], s);
        // Every some-ctrl combo includes b with LD ≤ 2 ⇒ LD(s) ≤ 12 < 50.
        assert!(p.inputs[0][Level::Zero].is_empty());
        // a's nc class also dies: all-nc combo impossible (b can't be 1),
        // and the other-ctrl mask (via b) is timing-infeasible.
        assert!(p.inputs[0][Level::One].is_empty());
        assert!(p.output.is_empty());
    }

    #[test]
    fn and_family_table_matches_gatekind() {
        for kind in [GateKind::And, GateKind::Nand, GateKind::Or, GateKind::Nor] {
            let (c, out_c) = and_family_classes(kind);
            assert_eq!(Some(c.to_bool()), kind.controlling_value(), "{kind}");
            assert_eq!(Some(out_c.to_bool()), kind.controlled_output(), "{kind}");
        }
    }

    /// Exhaustive interval-grid equivalence of the 2-input kernel against
    /// the general AND-family rule: for every pair drawn from a grid of
    /// per-class intervals (empty, bounded, half-bounded, degenerate, and
    /// constant-at-−∞ shapes) and every family kind, [`project_and2`] must
    /// return bit-identical targets to [`project_and_family`].
    #[test]
    fn kernel_matches_general() {
        let grid: Vec<Aw> = vec![
            Aw::EMPTY,
            Aw::FULL,
            before(0),
            before(20),
            aw(0, 15),
            aw(10, 10),
            aw(18, 40),
            Aw::new(Time::new(25), Time::POS_INF),
        ];
        let mut signals: Vec<Signal> = Vec::new();
        for &z in &grid {
            for &o in &grid {
                signals.push(Signal::new(z, o));
            }
        }
        let mut general = Vec::new();
        let mut checked = 0u64;
        for kind in [GateKind::And, GateKind::Nand, GateKind::Or, GateKind::Nor] {
            for &a in &signals {
                for &b in &signals {
                    // A fixed non-trivial output domain keeps the sweep
                    // k^2-sized; output variation is covered by the solver
                    // and oracle suites.
                    let s = Signal::new(aw(5, 35), before(30));
                    for out in [s, Signal::FULL] {
                        if a.is_empty() || b.is_empty() || out.is_empty() {
                            continue;
                        }
                        general.clear();
                        let g_out = project_and_family(kind, 7, &[a, b], out, &mut general);
                        let (k_out, k_a, k_b) = project_and2(kind, 7, a, b, out);
                        assert_eq!(k_out, g_out, "{kind} output for {a:?} {b:?} {out:?}");
                        assert_eq!(k_a, general[0], "{kind} in0 for {a:?} {b:?} {out:?}");
                        assert_eq!(k_b, general[1], "{kind} in1 for {a:?} {b:?} {out:?}");
                        checked += 1;
                    }
                }
            }
        }
        assert!(checked > 30_000, "grid should be dense, got {checked}");
    }
}
