//! Static learning (§4): SOCRATES-style class implications.
//!
//! In a pre-processing stage, every net is tentatively fixed to each class
//! and the consequences are propagated through the circuit at the *class*
//! level (a 2-bit "which settling values remain possible" analysis). Nets
//! whose class becomes unique yield implications `y=v ⇒ x=w`, stored
//! together with their contrapositives `x=¬w ⇒ y=¬v` — the indirect ones
//! are exactly what local gate consistency cannot see. During narrowing,
//! whenever a domain's class becomes fixed the learned table imposes class
//! restrictions on other domains (the paper: "when a class becomes empty in
//! the domain of a net, learning tables are used to impose class
//! restrictions on other domains").

use ltt_netlist::{Circuit, GateKind, NetId};
use ltt_waveform::Level;
use std::collections::HashSet;

const CAN0: u8 = 1;
const CAN1: u8 = 2;
const BOTH: u8 = CAN0 | CAN1;

fn bit(v: Level) -> u8 {
    match v {
        Level::Zero => CAN0,
        Level::One => CAN1,
    }
}

fn forward_classes(kind: GateKind, ins: &[u8]) -> u8 {
    if ins.contains(&0) {
        return 0;
    }
    match kind {
        GateKind::Not => {
            let mut out = 0;
            if ins[0] & CAN0 != 0 {
                out |= CAN1;
            }
            if ins[0] & CAN1 != 0 {
                out |= CAN0;
            }
            out
        }
        GateKind::Buffer | GateKind::Delay => ins[0],
        GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
            let c = bit(Level::from_bool(kind.controlling_value().expect("ctrl")));
            let nc = if c == CAN0 { CAN1 } else { CAN0 };
            let out_c = bit(Level::from_bool(kind.controlled_output().expect("ctrl")));
            let out_nc = if out_c == CAN0 { CAN1 } else { CAN0 };
            let mut out = 0;
            if ins.iter().any(|&s| s & c != 0) {
                out |= out_c;
            }
            if ins.iter().all(|&s| s & nc != 0) {
                out |= out_nc;
            }
            out
        }
        GateKind::Mux => {
            // out can be a's classes when sel can be 0, b's when sel can be 1.
            let mut out = 0;
            if ins[0] & CAN0 != 0 {
                out |= ins[1];
            }
            if ins[0] & CAN1 != 0 {
                out |= ins[2];
            }
            out
        }
        GateKind::Xor | GateKind::Xnor => {
            let pol = kind == GateKind::Xnor;
            let mut parities = 0u8; // bit0: even possible, bit1: odd possible
            parities |= 1;
            for &s in ins {
                let mut next = 0u8;
                if s & CAN0 != 0 {
                    next |= parities;
                }
                if s & CAN1 != 0 {
                    next |= ((parities & 1) << 1) | ((parities & 2) >> 1);
                }
                parities = next;
            }
            let mut out = 0;
            // even parity ⇒ XOR = 0, odd ⇒ XOR = 1; XNOR flips.
            if parities & 1 != 0 {
                out |= if pol { CAN1 } else { CAN0 };
            }
            if parities & 2 != 0 {
                out |= if pol { CAN0 } else { CAN1 };
            }
            out
        }
    }
}

fn backward_classes(kind: GateKind, ins: &[u8], out: u8, j: usize) -> u8 {
    if out == 0 || ins.contains(&0) {
        return 0;
    }
    let mut allowed = 0u8;
    for v in Level::BOTH {
        if ins[j] & bit(v) == 0 {
            continue;
        }
        // Is there a combo with input j = v whose output class is allowed?
        let mut trial: Vec<u8> = ins.to_vec();
        trial[j] = bit(v);
        if forward_classes(kind, &trial) & out != 0 {
            allowed |= bit(v);
        }
    }
    allowed
}

/// A table of learned class implications, plus constant nets discovered
/// along the way.
///
/// # Examples
///
/// ```
/// use ltt_core::ImplicationTable;
/// use ltt_netlist::{CircuitBuilder, DelayInterval, GateKind};
/// use ltt_waveform::Level;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CircuitBuilder::new("t");
/// let a = b.input("a");
/// let x = b.gate("x", GateKind::Not, &[a], DelayInterval::fixed(10));
/// b.mark_output(x);
/// let c = b.build()?;
/// let table = ImplicationTable::learn(&c);
/// // a = 1 implies x = 0.
/// assert!(table
///     .implied_by(a, Level::One)
///     .contains(&(x, Level::Zero)));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct ImplicationTable {
    /// `table[net][level] = implied (net, level) pairs`.
    table: Vec<[Vec<(NetId, Level)>; 2]>,
    /// Nets proven constant (one class can never be produced).
    constants: Vec<(NetId, Level)>,
    len: usize,
}

impl ImplicationTable {
    /// Runs the learning pre-process with every net as an assumption
    /// source. Exhaustive (quadratic in circuit size); prefer
    /// [`ImplicationTable::learn_stems`] on large circuits.
    pub fn learn(circuit: &Circuit) -> ImplicationTable {
        let sources: Vec<NetId> = circuit.net_ids().collect();
        Self::learn_scoped(circuit, &sources)
    }

    /// Runs the learning pre-process with only the reconvergent fanout
    /// stems as assumption sources — where non-local implications live and
    /// the table stays small.
    pub fn learn_stems(circuit: &Circuit) -> ImplicationTable {
        let sources: Vec<NetId> = circuit
            .net_ids()
            .filter(|&n| circuit.net(n).is_fanout_stem() && circuit.is_reconvergent_stem(n))
            .collect();
        Self::learn_scoped(circuit, &sources)
    }

    fn learn_scoped(circuit: &Circuit, sources: &[NetId]) -> ImplicationTable {
        let n = circuit.num_nets();
        let mut table: Vec<[Vec<(NetId, Level)>; 2]> = vec![Default::default(); n];
        let mut constants = Vec::new();
        let mut seen: HashSet<(usize, usize, usize, usize)> = HashSet::new();
        let mut len = 0usize;

        for &y in sources {
            for v in Level::BOTH {
                match propagate_assumption(circuit, y, v) {
                    None => {
                        // y can never settle to v: it is constant ¬v.
                        constants.push((y, !v));
                    }
                    Some(classes) => {
                        for x in circuit.net_ids() {
                            if x == y {
                                continue;
                            }
                            let s = classes[x.index()];
                            let w = match s {
                                CAN0 => Level::Zero,
                                CAN1 => Level::One,
                                _ => continue,
                            };
                            // Direct: y=v ⇒ x=w.
                            if seen.insert((y.index(), v.index(), x.index(), w.index())) {
                                table[y.index()][v.index()].push((x, w));
                                len += 1;
                            }
                            // Contrapositive: x=¬w ⇒ y=¬v.
                            let (cx, cv) = (!w, !v);
                            if seen.insert((x.index(), cx.index(), y.index(), cv.index())) {
                                table[x.index()][cx.index()].push((y, cv));
                                len += 1;
                            }
                        }
                    }
                }
            }
        }
        ImplicationTable {
            table,
            constants,
            len,
        }
    }

    /// Slices the table to a fanin cone, renumbering every net through the
    /// view's old → sub map. Only implications whose source *and* target
    /// both lie in the cone survive; per-bucket order is preserved, so a
    /// sliced table fires the surviving implications in exactly the order a
    /// whole-circuit narrower (with out-of-cone targets masked) would —
    /// the invariant behind bit-identical cone-sliced checks.
    ///
    /// Constants are filtered the same way. Note that a sliced table is
    /// *not* the table learned from the sub-circuit: sources outside the
    /// cone contributed contrapositives inside it, and stem selection on
    /// the sub-circuit could differ. Cone checks must slice, not re-learn.
    pub fn sliced(&self, view: &ltt_netlist::ConeView) -> ImplicationTable {
        let sub = view.circuit();
        let num_sub = sub.num_nets();
        let mut table: Vec<[Vec<(NetId, Level)>; 2]> = vec![Default::default(); num_sub];
        let mut len = 0usize;
        for sub_id in sub.net_ids() {
            let old = view.net_from_sub(sub_id);
            for v in Level::BOTH {
                let bucket: Vec<(NetId, Level)> = self.table[old.index()][v.index()]
                    .iter()
                    .filter_map(|&(target, w)| view.net_to_sub(target).map(|t| (t, w)))
                    .collect();
                len += bucket.len();
                table[sub_id.index()][v.index()] = bucket;
            }
        }
        let constants: Vec<(NetId, Level)> = self
            .constants
            .iter()
            .filter_map(|&(net, v)| view.net_to_sub(net).map(|n| (n, v)))
            .collect();
        ImplicationTable {
            table,
            constants,
            len,
        }
    }

    /// The implications fired by fixing `net` to `level`.
    pub fn implied_by(&self, net: NetId, level: Level) -> &[(NetId, Level)] {
        &self.table[net.index()][level.index()]
    }

    /// Nets proven constant by learning, with their constant value.
    pub fn constants(&self) -> &[(NetId, Level)] {
        &self.constants
    }

    /// Total number of stored implications.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no implications were learned.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Propagates the class assumption `y = v` to a fixpoint. Returns the class
/// sets per net, or `None` if the assumption is contradictory.
fn propagate_assumption(circuit: &Circuit, y: NetId, v: Level) -> Option<Vec<u8>> {
    let mut classes = vec![BOTH; circuit.num_nets()];
    classes[y.index()] = bit(v);
    let mut queue: Vec<_> = {
        let net = circuit.net(y);
        net.driver()
            .into_iter()
            .chain(net.readers().iter().copied())
            .collect()
    };
    let mut queued = vec![false; circuit.num_gates()];
    for &g in &queue {
        queued[g.index()] = true;
    }
    while let Some(gid) = queue.pop() {
        queued[gid.index()] = false;
        let gate = circuit.gate(gid);
        let ins: Vec<u8> = gate.inputs().iter().map(|n| classes[n.index()]).collect();
        let out_net = gate.output();
        let mut changed_nets: Vec<NetId> = Vec::new();
        // Forward.
        let out_new = classes[out_net.index()] & forward_classes(gate.kind(), &ins);
        if out_new != classes[out_net.index()] {
            classes[out_net.index()] = out_new;
            if out_new == 0 {
                return None;
            }
            changed_nets.push(out_net);
        }
        // Backward.
        for (j, &inp) in gate.inputs().iter().enumerate() {
            let allowed = classes[inp.index()] & backward_classes(gate.kind(), &ins, out_new, j);
            if allowed != classes[inp.index()] {
                classes[inp.index()] = allowed;
                if allowed == 0 {
                    return None;
                }
                changed_nets.push(inp);
            }
        }
        for net in changed_nets {
            let n = circuit.net(net);
            for g in n.driver().into_iter().chain(n.readers().iter().copied()) {
                if !queued[g.index()] {
                    queued[g.index()] = true;
                    queue.push(g);
                }
            }
        }
    }
    Some(classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltt_netlist::{CircuitBuilder, DelayInterval};

    fn d10() -> DelayInterval {
        DelayInterval::fixed(10)
    }

    #[test]
    fn forward_classes_and_family() {
        // AND: out 0 possible iff some input can be 0.
        assert_eq!(forward_classes(GateKind::And, &[CAN1, CAN1]), CAN1);
        assert_eq!(forward_classes(GateKind::And, &[CAN0, CAN1]), CAN0);
        assert_eq!(forward_classes(GateKind::And, &[BOTH, CAN1]), BOTH);
        assert_eq!(forward_classes(GateKind::Nand, &[CAN1, CAN1]), CAN0);
        assert_eq!(forward_classes(GateKind::Nor, &[CAN0, CAN0]), CAN1);
    }

    #[test]
    fn forward_classes_xor_parity() {
        assert_eq!(forward_classes(GateKind::Xor, &[CAN1, CAN1]), CAN0);
        assert_eq!(forward_classes(GateKind::Xor, &[CAN1, CAN0]), CAN1);
        assert_eq!(forward_classes(GateKind::Xor, &[BOTH, CAN0]), BOTH);
        assert_eq!(forward_classes(GateKind::Xnor, &[CAN1, CAN1]), CAN1);
        assert_eq!(forward_classes(GateKind::Xor, &[CAN1, CAN1, CAN1]), CAN1);
    }

    #[test]
    fn backward_classes_and() {
        // AND with output forced 1: every input must be 1.
        assert_eq!(
            backward_classes(GateKind::And, &[BOTH, BOTH], CAN1, 0),
            CAN1
        );
        // AND with output forced 0 and the other input forced 1: this input
        // must be 0.
        assert_eq!(
            backward_classes(GateKind::And, &[BOTH, CAN1], CAN0, 0),
            CAN0
        );
        // AND with output forced 0 and the other input free: both classes OK.
        assert_eq!(
            backward_classes(GateKind::And, &[BOTH, BOTH], CAN0, 0),
            BOTH
        );
    }

    #[test]
    fn learn_inverter_chain() {
        let mut b = CircuitBuilder::new("t");
        let a = b.input("a");
        let x = b.gate("x", GateKind::Not, &[a], d10());
        let y = b.gate("y", GateKind::Not, &[x], d10());
        b.mark_output(y);
        let c = b.build().unwrap();
        let t = ImplicationTable::learn(&c);
        assert!(t.implied_by(a, Level::One).contains(&(x, Level::Zero)));
        assert!(t.implied_by(a, Level::One).contains(&(y, Level::One)));
        assert!(t.implied_by(y, Level::Zero).contains(&(a, Level::Zero)));
        assert!(t.constants().is_empty());
        assert!(!t.is_empty());
    }

    #[test]
    fn learn_indirect_implication() {
        // y = AND(a, b), z = OR(y, a). Fixing z = 0 implies a = 0 (and
        // y = 0): an implication spanning two gates.
        let mut b = CircuitBuilder::new("t");
        let a = b.input("a");
        let b2 = b.input("b");
        let y = b.gate("y", GateKind::And, &[a, b2], d10());
        let z = b.gate("z", GateKind::Or, &[y, a], d10());
        b.mark_output(z);
        let c = b.build().unwrap();
        let t = ImplicationTable::learn(&c);
        assert!(t.implied_by(z, Level::Zero).contains(&(a, Level::Zero)));
        // Contrapositive: a = 1 ⇒ z = 1 (classic SOCRATES-style learning:
        // forward propagation of a=1 alone cannot see it, because y is
        // unknown; the contrapositive of z=0 ⇒ a=0 provides it).
        assert!(t.implied_by(a, Level::One).contains(&(z, Level::One)));
    }

    #[test]
    fn learn_finds_constants() {
        // x = AND(a, NOT(a)) is constant 0.
        let mut b = CircuitBuilder::new("t");
        let a = b.input("a");
        let na = b.gate("na", GateKind::Not, &[a], d10());
        let x = b.gate("x", GateKind::And, &[a, na], d10());
        b.mark_output(x);
        let c = b.build().unwrap();
        let t = ImplicationTable::learn(&c);
        assert!(t.constants().contains(&(x, Level::Zero)));
    }
}
