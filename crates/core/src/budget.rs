//! Resource budgets and cooperative cancellation.
//!
//! The case analysis is a branch-and-bound over an NP-complete check, so a
//! pathological instance can blow past any wall-clock expectation — the
//! paper's Table 1 has an `A` (abandoned) column for exactly this reason.
//! A [`Budget`] bounds a check by **wall-clock** (per-check window and/or
//! absolute deadline), **backtracks**, and **narrowing events**, and can be
//! cancelled externally through a shared [`CancelToken`]. The narrower's
//! event loop, the FAN search, and every pipeline stage poll the budget
//! cooperatively; when it trips, the check stops at a safe point and
//! returns a *sound partial result* (see
//! [`Completeness`](crate::Completeness)) instead of hanging or lying.
//!
//! Budgets never affect what a check *claims* — only whether it finishes.
//! An interrupted fixpoint leaves domains **under-narrowed** (a superset of
//! the greatest fixpoint), which can only make the verdict *less*
//! conclusive, never wrongly conclusive; an interrupted search reports
//! [`Verdict::Abandoned`](crate::Verdict::Abandoned) rather than guessing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shareable cancellation flag. Cloning shares the flag: cancelling any
/// clone cancels them all.
///
/// # Examples
///
/// ```
/// use ltt_core::CancelToken;
///
/// let token = CancelToken::new();
/// let shared = token.clone();
/// assert!(!shared.is_cancelled());
/// token.cancel();
/// assert!(shared.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Why a budget tripped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TripReason {
    /// The wall-clock window or absolute deadline expired.
    Deadline,
    /// A [`CancelToken`] was cancelled.
    Cancelled,
    /// The narrowing-event cap was reached.
    Events,
    /// The backtrack cap was reached.
    Backtracks,
}

impl std::fmt::Display for TripReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TripReason::Deadline => write!(f, "deadline expired"),
            TripReason::Cancelled => write!(f, "cancelled"),
            TripReason::Events => write!(f, "event cap reached"),
            TripReason::Backtracks => write!(f, "backtrack cap reached"),
        }
    }
}

/// Resource limits for one check (or, via the absolute deadline, a whole
/// batch). The default budget is unlimited.
///
/// Two wall-clock forms compose: `wall` is a **per-check** window measured
/// from the moment the budget is armed (each check, or each probe of a
/// delay search, gets its own window), while `deadline` is an **absolute**
/// instant shared by everything holding the budget — the form a batch
/// deadline needs.
///
/// # Examples
///
/// ```
/// use ltt_core::{verify, Budget, VerifyConfig};
/// use ltt_netlist::generators::figure1;
/// use std::time::Duration;
///
/// let c = figure1(10);
/// let s = c.outputs()[0];
/// let config = VerifyConfig {
///     budget: Budget::unlimited().with_wall(Duration::from_secs(5)),
///     ..Default::default()
/// };
/// // A generous budget changes nothing on an easy check.
/// assert!(verify(&c, s, 61, &config).verdict.is_no_violation());
/// assert!(verify(&c, s, 61, &config).completeness.is_exact());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Budget {
    /// Per-check wall-clock window (measured from when the budget is armed).
    wall: Option<Duration>,
    /// Absolute deadline (shared across checks holding this budget).
    deadline: Option<Instant>,
    /// Backtrack cap for the case analysis (combines with
    /// [`VerifyConfig::max_backtracks`](crate::VerifyConfig::max_backtracks)
    /// by minimum).
    max_backtracks: Option<u64>,
    /// Narrowing-event cap across the whole check.
    max_events: Option<u64>,
    /// Cancellation sources (all are polled; any one trips the budget).
    cancels: Vec<CancelToken>,
}

impl Budget {
    /// The unlimited budget (same as `Budget::default()`).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Whether no limit of any kind is set (polling is free in this case).
    pub fn is_unlimited(&self) -> bool {
        self.wall.is_none()
            && self.deadline.is_none()
            && self.max_backtracks.is_none()
            && self.max_events.is_none()
            && self.cancels.is_empty()
    }

    /// Caps each check's wall-clock at `window` (min-combined with any
    /// existing window).
    pub fn with_wall(mut self, window: Duration) -> Self {
        self.wall = Some(self.wall.map_or(window, |w| w.min(window)));
        self
    }

    /// Sets an absolute deadline (min-combined with any existing one).
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(self.deadline.map_or(deadline, |d| d.min(deadline)));
        self
    }

    /// Caps case-analysis backtracks (min-combined).
    pub fn with_backtracks(mut self, max: u64) -> Self {
        self.max_backtracks = Some(self.max_backtracks.map_or(max, |m| m.min(max)));
        self
    }

    /// Caps narrowing events across the whole check (min-combined).
    pub fn with_events(mut self, max: u64) -> Self {
        self.max_events = Some(self.max_events.map_or(max, |m| m.min(max)));
        self
    }

    /// Adds a cancellation source.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancels.push(token);
        self
    }

    /// Whether any of this budget's cancellation sources has fired.
    pub fn is_cancelled(&self) -> bool {
        self.cancels.iter().any(CancelToken::is_cancelled)
    }

    /// The cancellation sources (the batch runner's skip test polls these
    /// without arming the budget).
    pub(crate) fn cancel_tokens(&self) -> &[CancelToken] {
        &self.cancels
    }

    /// The tightest combination of two budgets: min of every cap, union of
    /// the cancellation sources.
    pub fn merged(&self, other: &Budget) -> Budget {
        let mut out = self.clone();
        if let Some(w) = other.wall {
            out = out.with_wall(w);
        }
        if let Some(d) = other.deadline {
            out = out.with_deadline(d);
        }
        if let Some(b) = other.max_backtracks {
            out = out.with_backtracks(b);
        }
        if let Some(e) = other.max_events {
            out = out.with_events(e);
        }
        out.cancels.extend(other.cancels.iter().cloned());
        out
    }

    /// The backtrack cap, if any.
    pub fn max_backtracks(&self) -> Option<u64> {
        self.max_backtracks
    }

    /// The absolute instant past which this budget's wall-clock limits are
    /// exceeded if armed at `now`: the earlier of the absolute deadline and
    /// `now + wall`. `None` when neither wall-clock limit is set.
    pub fn absolute_deadline(&self, now: Instant) -> Option<Instant> {
        match (self.deadline, self.wall.map(|w| now + w)) {
            (Some(d), Some(w)) => Some(d.min(w)),
            (d, w) => d.or(w),
        }
    }

    /// Arms the budget: fixes the start of the per-check wall window.
    /// Public so out-of-crate engines (the `ltt-sat` CDCL core) can poll
    /// the same limits the narrowing pipeline honours.
    pub fn arm(&self) -> ArmedBudget {
        ArmedBudget {
            budget: self.clone(),
            started: Instant::now(),
            poll_countdown: 0,
            tripped: None,
        }
    }
}

/// How many cheap polls elapse between wall-clock reads (`Instant::now` is
/// cheap but not free; an event applies a full gate projection, so reading
/// the clock every 64th event keeps the overhead unmeasurable while
/// bounding deadline overshoot to 64 events).
const CLOCK_STRIDE: u32 = 64;

/// A budget bound to a running check: knows when the check started and
/// remembers the first trip (sticky — once tripped, every later poll
/// reports the same reason so the whole pipeline unwinds promptly).
#[derive(Clone, Debug)]
pub struct ArmedBudget {
    budget: Budget,
    started: Instant,
    poll_countdown: u32,
    tripped: Option<TripReason>,
}

impl ArmedBudget {
    /// An armed unlimited budget (polling returns `None` immediately).
    pub fn unlimited() -> Self {
        Budget::unlimited().arm()
    }

    /// The underlying (unarmed) budget.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The sticky trip, if the budget has already tripped.
    pub fn tripped(&self) -> Option<TripReason> {
        self.tripped
    }

    /// Records an externally observed trip (e.g. the search's backtrack
    /// counter crossing the cap) so later polls stay tripped.
    pub fn trip(&mut self, reason: TripReason) {
        if self.tripped.is_none() {
            self.tripped = Some(reason);
        }
    }

    /// Polls every limit; `events` is the caller's narrowing-event counter.
    /// Returns the (sticky) trip reason, or `None` while within budget.
    /// Wall-clock is read once per [`CLOCK_STRIDE`] polls.
    pub fn poll(&mut self, events: u64) -> Option<TripReason> {
        if let Some(reason) = self.tripped {
            return Some(reason);
        }
        if self.budget.is_unlimited() {
            return None;
        }
        if self.budget.cancels.iter().any(CancelToken::is_cancelled) {
            self.tripped = Some(TripReason::Cancelled);
            return self.tripped;
        }
        if let Some(max) = self.budget.max_events {
            if events >= max {
                self.tripped = Some(TripReason::Events);
                return self.tripped;
            }
        }
        if self.budget.wall.is_some() || self.budget.deadline.is_some() {
            if self.poll_countdown == 0 {
                self.poll_countdown = CLOCK_STRIDE;
                let now = Instant::now();
                let wall_hit = self
                    .budget
                    .wall
                    .is_some_and(|w| now.duration_since(self.started) >= w);
                let deadline_hit = self.budget.deadline.is_some_and(|d| now >= d);
                if wall_hit || deadline_hit {
                    self.tripped = Some(TripReason::Deadline);
                    return self.tripped;
                }
            }
            self.poll_countdown -= 1;
        }
        None
    }

    /// Like [`ArmedBudget::poll`] but always reads the clock — for
    /// low-frequency call sites (stage boundaries, per-decision checks)
    /// where stride-skipping would delay the trip.
    pub fn poll_now(&mut self) -> Option<TripReason> {
        self.poll_countdown = 0;
        self.poll(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let mut armed = Budget::unlimited().arm();
        assert!(armed.budget().is_unlimited());
        for i in 0..10_000 {
            assert_eq!(armed.poll(i), None);
        }
    }

    #[test]
    fn cancel_token_is_shared() {
        let token = CancelToken::new();
        let mut armed = Budget::unlimited().with_cancel(token.clone()).arm();
        assert_eq!(armed.poll(0), None);
        token.cancel();
        assert_eq!(armed.poll(0), Some(TripReason::Cancelled));
        // Sticky.
        assert_eq!(armed.poll(0), Some(TripReason::Cancelled));
    }

    #[test]
    fn event_cap_trips_at_cap() {
        let mut armed = Budget::unlimited().with_events(100).arm();
        assert_eq!(armed.poll(99), None);
        assert_eq!(armed.poll(100), Some(TripReason::Events));
    }

    #[test]
    fn zero_wall_trips_immediately() {
        let mut armed = Budget::unlimited().with_wall(Duration::ZERO).arm();
        assert_eq!(armed.poll_now(), Some(TripReason::Deadline));
    }

    #[test]
    fn elapsed_deadline_trips() {
        let mut armed = Budget::unlimited()
            .with_deadline(Instant::now() - Duration::from_millis(1))
            .arm();
        assert_eq!(armed.poll_now(), Some(TripReason::Deadline));
    }

    #[test]
    fn merged_takes_the_minimum_of_caps() {
        let a = Budget::unlimited().with_backtracks(10).with_events(500);
        let b = Budget::unlimited().with_backtracks(3);
        let m = a.merged(&b);
        assert_eq!(m.max_backtracks(), Some(3));
        let mut armed = m.arm();
        assert_eq!(armed.poll(499), None);
        assert_eq!(armed.poll(500), Some(TripReason::Events));
    }

    #[test]
    fn merged_unions_cancel_tokens() {
        let ta = CancelToken::new();
        let tb = CancelToken::new();
        let m = Budget::unlimited()
            .with_cancel(ta)
            .merged(&Budget::unlimited().with_cancel(tb.clone()));
        let mut armed = m.arm();
        assert_eq!(armed.poll(0), None);
        tb.cancel();
        assert_eq!(armed.poll(0), Some(TripReason::Cancelled));
    }

    #[test]
    fn trip_reason_displays() {
        assert!(TripReason::Deadline.to_string().contains("deadline"));
        assert!(TripReason::Backtracks.to_string().contains("backtrack"));
    }
}
