//! The timing-check pipeline (Fig. 4): constraint-system construction,
//! narrowing, global implications on timing dominators, stem correlation,
//! and case analysis — with per-stage verdicts matching the columns of the
//! paper's Table 1.
//!
//! The free functions here ([`verify`], [`exact_delay`],
//! [`verify_all_outputs`], …) are convenience wrappers: each opens a
//! single-use [`CheckSession`] and runs the checks through it. Workloads
//! with more than one check per circuit should open the session themselves
//! (and fan out with a [`BatchRunner`](crate::BatchRunner)) so the
//! per-circuit analyses are prepared once instead of per call.

use crate::budget::{Budget, TripReason};
use crate::carriers::fixpoint_with_dominators;
use crate::failpoint;
use crate::fan::{CaseConfig, CaseOutcome, CaseStats};
use crate::learning::ImplicationTable;
use crate::obs::Obs;
use crate::prepared::{CheckSession, PreparedCircuit};
use crate::solver::{FixpointResult, Narrower, SolverStats};
use crate::stems::{correlation_stems_masked, stem_correlation, StemStats};
use ltt_netlist::{Circuit, NetId};
use ltt_waveform::{Signal, Time};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Circuit delay mode: which abstract waveforms are applied to the primary
/// inputs (§1: the framework adapts to delay modes "by a simple change in
/// the abstract waveforms applied to the inputs").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DelayMode {
    /// Floating mode: unknown initial state, vector applied at time 0 —
    /// inputs get `(0|_{−∞}^0, 1|_{−∞}^0)`.
    #[default]
    Floating,
    /// Two-vector transition mode with every input switching at time 0 —
    /// inputs get `(0|_0^0, 1|_0^0)`.
    Transition,
}

/// Cone-scoped checking mode: whether a check `σ = (ξ, s, δ)` runs on the
/// whole circuit or only on `s`'s transitive-fanin cone (which is all the
/// check can depend on — paths leaving the cone never re-enter, so the
/// greatest fixpoint on cone nets is the same either way).
///
/// `Sliced` and `Masked` runs are bit-identical to each other — verdicts,
/// bounds, backtracks and [`StageEffort`] — by construction (see DESIGN.md
/// §14): slicing renumbers the cone order-preservingly, so the two event
/// schedules are isomorphic. The legacy `Off` pipeline agrees on verdicts
/// and certified vectors' validity but *not* on effort counters: it also
/// schedules the fringe gates reading cone nets and decides out-of-cone
/// inputs in its phase-3 tail.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ConeMode {
    /// Whole-circuit checks (the legacy pipeline). The default.
    #[default]
    Off,
    /// Slice when the cone is a strict subset of the circuit, legacy
    /// otherwise — the production setting.
    Auto,
    /// Force the sliced sub-circuit path (falls back to legacy when the
    /// cone covers the whole circuit, where slicing is the identity).
    Sliced,
    /// Run on the whole-circuit store with propagation and decisions
    /// masked to the cone — the bit-identity reference for `Sliced`, and a
    /// debugging aid; it saves the narrowing work but not the memcpys.
    Masked,
}

/// Static-learning scope.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LearningMode {
    /// No learning pre-process.
    Off,
    /// Learn from reconvergent fanout stems only (cheap, the default).
    #[default]
    Stems,
    /// Learn from every net (quadratic; small circuits only).
    All,
}

/// Which verification backend answers a check.
///
/// The narrowing pipeline is the only engine this crate implements; the
/// field is carried here as plain configuration data so that front-ends
/// (CLI, serve) and the `ltt-sat` crate can dispatch on it without a
/// dependency cycle. Code in this crate treats every value as
/// [`Engine::Narrow`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Engine {
    /// Waveform narrowing + FAN case analysis (the paper's method).
    #[default]
    Narrow,
    /// CNF unrolling of the floating-mode semantics, solved by CDCL
    /// (`ltt-sat`).
    Sat,
    /// Narrowing first; on [`Completeness::BudgetExhausted`] fall back to
    /// SAT to decide the check or tighten the delay interval.
    Hybrid,
}

impl Engine {
    /// Stable lowercase name (CLI flag value / wire `opts.engine`).
    pub fn name(&self) -> &'static str {
        match self {
            Engine::Narrow => "narrow",
            Engine::Sat => "sat",
            Engine::Hybrid => "hybrid",
        }
    }

    /// Parses a CLI/wire engine name.
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "narrow" | "narrowing" => Some(Engine::Narrow),
            "sat" | "cnf" => Some(Engine::Sat),
            "hybrid" => Some(Engine::Hybrid),
            _ => None,
        }
    }
}

/// Pipeline configuration. The defaults enable everything, matching the
/// paper's full method.
#[derive(Clone, Debug)]
pub struct VerifyConfig {
    /// Input waveform mode.
    pub delay_mode: DelayMode,
    /// Cone-scoped checking mode.
    pub cone: ConeMode,
    /// Static-learning scope.
    pub learning: LearningMode,
    /// Apply global implications on timing dominators (G.I.T.D., §4).
    pub dominators: bool,
    /// Apply stem correlation before case analysis (§5).
    pub stem_correlation: bool,
    /// Run the case analysis when narrowing is inconclusive (§5).
    pub case_analysis: bool,
    /// Backtrack budget for the case analysis.
    pub max_backtracks: u64,
    /// Certify reported vectors with the exact floating-mode simulator.
    pub certify_vectors: bool,
    /// Resource budget (wall-clock, events, cancellation) for each check.
    /// When it trips the check returns early with
    /// [`Completeness::BudgetExhausted`] instead of hanging; the default is
    /// unlimited.
    pub budget: Budget,
    /// Which backend front-ends should route the check through. This
    /// crate always runs the narrowing pipeline; `Sat`/`Hybrid` are
    /// honoured by dispatchers layered on top (see `ltt-sat`).
    pub engine: Engine,
    /// Observability sink. The default is disabled (a no-op handle);
    /// attach a recorder with [`Obs::recording`] to capture per-stage
    /// spans. Recording never changes what the pipeline computes:
    /// instrumented runs produce reports bit-identical to uninstrumented
    /// ones (timing fields exempt).
    pub obs: Obs,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            delay_mode: DelayMode::Floating,
            cone: ConeMode::Off,
            learning: LearningMode::Stems,
            dominators: true,
            stem_correlation: true,
            case_analysis: true,
            max_backtracks: 100_000,
            certify_vectors: true,
            budget: Budget::unlimited(),
            engine: Engine::Narrow,
            obs: Obs::disabled(),
        }
    }
}

impl VerifyConfig {
    /// The basic method of [Cerny–Zejda 1994]: plain waveform narrowing,
    /// no global implications, no search — the paper's "BEFORE G.I.T.D."
    /// baseline.
    pub fn narrowing_only() -> Self {
        VerifyConfig {
            learning: LearningMode::Off,
            dominators: false,
            stem_correlation: false,
            case_analysis: false,
            ..Default::default()
        }
    }
}

/// Verdict of one stage (`P` / `N` in Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageVerdict {
    /// `P`: a violation is still possible after this stage.
    Possible,
    /// `N`: no violation of the timing check is possible.
    NoViolation,
}

/// Which stage settled the check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Basic waveform narrowing (plus learning, if enabled).
    Narrowing,
    /// Global implications on timing dominators.
    Dominators,
    /// Stem correlation.
    StemCorrelation,
    /// Case analysis.
    CaseAnalysis,
    /// CNF/CDCL backend (`ltt-sat`); never produced by this crate's
    /// pipeline, only by engine dispatchers layered on top.
    Sat,
}

/// Wall-clock spent in each pipeline stage, per check — or, summed with
/// [`StageTimes::saturating_add`], per batch (CPU-time-like under
/// parallelism: the sum over concurrent checks exceeds the batch
/// wall-clock).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageTimes {
    /// Basic waveform narrowing (stage 1).
    pub narrowing: Duration,
    /// Global implications on timing dominators (stage 2).
    pub dominators: Duration,
    /// Stem correlation (stage 3).
    pub stems: Duration,
    /// Case analysis (stage 4).
    pub case_analysis: Duration,
}

impl StageTimes {
    /// Per-stage saturating sum (aggregation must never panic).
    pub fn saturating_add(&self, other: &StageTimes) -> StageTimes {
        StageTimes {
            narrowing: self.narrowing.saturating_add(other.narrowing),
            dominators: self.dominators.saturating_add(other.dominators),
            stems: self.stems.saturating_add(other.stems),
            case_analysis: self.case_analysis.saturating_add(other.case_analysis),
        }
    }

    /// Total time across the four stages (saturating).
    pub fn total(&self) -> Duration {
        self.narrowing
            .saturating_add(self.dominators)
            .saturating_add(self.stems)
            .saturating_add(self.case_analysis)
    }
}

/// Deterministic solver-effort counters attributed to each pipeline
/// stage: the [`SolverStats`] increments accumulated while that stage
/// ran. Unlike [`StageTimes`] these are exact integer deltas, so they are
/// identical across runs, thread counts, and machines — the per-stage
/// breakdown the paper's Table 1 analysis attributes runtime with.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageEffort {
    /// Basic waveform narrowing (stage 1).
    pub narrowing: SolverStats,
    /// Global implications on timing dominators (stage 2).
    pub dominators: SolverStats,
    /// Stem correlation (stage 3).
    pub stems: SolverStats,
    /// Case analysis (stage 4).
    pub case_analysis: SolverStats,
}

impl StageEffort {
    /// Per-stage saturating sum (aggregation must never panic).
    pub fn saturating_add(&self, other: &StageEffort) -> StageEffort {
        StageEffort {
            narrowing: self.narrowing.saturating_add(&other.narrowing),
            dominators: self.dominators.saturating_add(&other.dominators),
            stems: self.stems.saturating_add(&other.stems),
            case_analysis: self.case_analysis.saturating_add(&other.case_analysis),
        }
    }

    /// Total effort across the four stages (saturating).
    pub fn total(&self) -> SolverStats {
        self.narrowing
            .saturating_add(&self.dominators)
            .saturating_add(&self.stems)
            .saturating_add(&self.case_analysis)
    }
}

/// Final verdict of the pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// No violation is possible; `stage` says which stage proved it.
    NoViolation {
        /// The stage that proved the check safe.
        stage: Stage,
    },
    /// A violating test vector was found (`V` in Table 1).
    Violation {
        /// The primary-input vector, in declaration order.
        vector: Vec<bool>,
    },
    /// Inconclusive: narrowing kept the system consistent and case
    /// analysis was disabled.
    Possible,
    /// Case analysis exceeded its backtrack budget (`A` in Table 1).
    Abandoned,
}

impl Verdict {
    /// Whether the verdict proves the check safe.
    pub fn is_no_violation(&self) -> bool {
        matches!(self, Verdict::NoViolation { .. })
    }

    /// Whether a concrete violation was found.
    pub fn is_violation(&self) -> bool {
        matches!(self, Verdict::Violation { .. })
    }
}

/// Whether a check's verdict reflects the full pipeline or a truncated run.
///
/// A budget trip never changes *what* a verdict claims — an interrupted
/// fixpoint leaves domains as a superset of the greatest fixpoint (so no
/// false contradiction is possible), and an interrupted search aborts
/// instead of backtracking — it only makes the verdict *less conclusive*.
/// `BudgetExhausted` therefore always pairs with [`Verdict::Abandoned`]:
/// `NoViolation` and `Violation` verdicts are exact by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Completeness {
    /// Every enabled stage ran to completion; the verdict is as strong as
    /// the configured pipeline can make it.
    Exact,
    /// A resource budget tripped mid-run.
    BudgetExhausted {
        /// The stage that was interrupted (or hit its cap).
        stage: Stage,
        /// Which limit tripped.
        reason: TripReason,
    },
}

impl Completeness {
    /// Whether the configured pipeline ran to completion.
    pub fn is_exact(&self) -> bool {
        matches!(self, Completeness::Exact)
    }
}

/// Full report of one timing check, mirroring a Table 1 row.
#[derive(Clone, Debug)]
pub struct VerifyReport {
    /// The checked output net.
    pub output: NetId,
    /// The checked delay bound δ.
    pub delta: i64,
    /// Final verdict.
    pub verdict: Verdict,
    /// Whether the verdict is exact or budget-truncated.
    pub completeness: Completeness,
    /// Stage verdict before global implications (Table 1 col. 4).
    pub before_gitd: StageVerdict,
    /// Stage verdict after global implications (col. 5; `None` if the
    /// stage did not run).
    pub after_gitd: Option<StageVerdict>,
    /// Stage verdict after stem correlation (col. 6).
    pub after_stems: Option<StageVerdict>,
    /// Backtracks spent in case analysis (col. 7).
    pub backtracks: u64,
    /// Solver effort counters.
    pub solver: SolverStats,
    /// Stem-correlation counters.
    pub stems: StemStats,
    /// Case-analysis counters.
    pub case: CaseStats,
    /// Wall-clock per pipeline stage.
    pub stage_times: StageTimes,
    /// Deterministic solver effort per pipeline stage.
    pub effort: StageEffort,
    /// Wall-clock time of the whole check.
    pub elapsed: Duration,
}

/// Runs the timing check `σ = (ξ, output, δ)` under *assumptions*: each
/// `(net, level)` pins a net's settling class before narrowing starts (the
/// industrial `set_case_analysis` idiom — constant mode pins, unused
/// inputs, scan enables). Everything else is [`verify`].
///
/// # Examples
///
/// ```
/// use ltt_core::{verify, verify_under, VerifyConfig};
/// use ltt_netlist::generators::figure1;
/// use ltt_waveform::Level;
///
/// let c = figure1(10);
/// let s = c.outputs()[0];
/// let e5 = c.net_by_name("e5").unwrap();
/// let config = VerifyConfig::default();
/// // Unconstrained, δ = 60 is violated…
/// assert!(verify(&c, s, 60, &config).verdict.is_violation());
/// // …but pinning e5 = 0 blocks the critical AND g4: no violation.
/// let r = verify_under(&c, s, 60, &[(e5, Level::Zero)], &config);
/// assert!(r.verdict.is_no_violation());
/// ```
pub fn verify_under(
    circuit: &Circuit,
    output: NetId,
    delta: i64,
    assumptions: &[(NetId, ltt_waveform::Level)],
    config: &VerifyConfig,
) -> VerifyReport {
    CheckSession::new(circuit, config.clone()).verify_under(output, delta, assumptions)
}

/// Runs the timing check `σ = (ξ, output, δ)` through the configured
/// pipeline (Fig. 4, extended with the paper's §5 stages).
///
/// # Examples
///
/// The paper's Example 2: the Figure 1 circuit has topological delay 70
/// but the 70-path is false; δ = 61 is proven safe by narrowing alone and
/// δ = 60 yields a test vector.
///
/// ```
/// use ltt_core::{verify, VerifyConfig};
/// use ltt_netlist::generators::figure1;
///
/// let c = figure1(10);
/// let s = c.outputs()[0];
/// let config = VerifyConfig::default();
/// assert!(verify(&c, s, 61, &config).verdict.is_no_violation());
/// assert!(verify(&c, s, 60, &config).verdict.is_violation());
/// ```
pub fn verify(circuit: &Circuit, output: NetId, delta: i64, config: &VerifyConfig) -> VerifyReport {
    CheckSession::new(circuit, config.clone()).verify(output, delta)
}

/// [`verify`] with a pre-computed learning table (the table depends only on
/// the circuit, so it can be shared across the checks of a delay search).
pub fn verify_with_learning(
    circuit: &Circuit,
    output: NetId,
    delta: i64,
    config: &VerifyConfig,
    table: Option<Arc<ImplicationTable>>,
) -> VerifyReport {
    let prepared = PreparedCircuit::with_table(circuit, table);
    CheckSession::with_prepared(prepared, config.clone()).verify(output, delta)
}

/// Clamps a `u64` counter into the `i64` range of a span argument.
fn counter_arg(value: u64) -> i64 {
    i64::try_from(value).unwrap_or(i64::MAX)
}

/// A net identifier as a span argument.
fn net_arg(net: NetId) -> i64 {
    i64::try_from(net.index()).unwrap_or(i64::MAX)
}

/// The common span arguments of a solver-driven pipeline stage.
fn stage_span_args(output: NetId, delta: i64, effort: &SolverStats) -> [(&'static str, i64); 5] {
    [
        ("output", net_arg(output)),
        ("delta", delta),
        ("events", counter_arg(effort.events)),
        ("narrowings", counter_arg(effort.narrowings)),
        ("learned", counter_arg(effort.learned_applications)),
    ]
}

/// The cone restriction of a masked pipeline run: cone-local stem
/// candidates for stage 3 and the case-analysis scope for stage 4 (stages
/// 1 and 2 are restricted by the narrower's own
/// [`NarrowScope`](crate::solver::NarrowScope)).
pub(crate) struct PipelineScope<'a> {
    /// Reconvergent-stem candidate mask computed on the *sub-circuit*,
    /// mapped back to whole-circuit net ids.
    pub stem_candidates: &'a [bool],
    /// Decision restriction for the case analysis.
    pub case: &'a crate::fan::CaseScope,
}

/// Runs the staged pipeline on a narrower that already carries the input
/// (and assumption) constraints; applies the δ constraint itself. Shared
/// analyses (stem candidates, SCOAP controllabilities) come from the
/// prepared circuit. `scope` masks stages 3–4 to a fanin cone (the
/// narrower's own scope masks stages 1–2).
pub(crate) fn run_pipeline(
    nw: &mut Narrower,
    prepared: &PreparedCircuit,
    output: NetId,
    delta: i64,
    config: &VerifyConfig,
    start: Instant,
    scope: Option<&PipelineScope<'_>>,
) -> VerifyReport {
    // Arm the budget first: the per-check wall window covers everything
    // below, including the δ-constraint propagation.
    nw.set_budget(&config.budget);
    let output_name = nw.circuit().net(output).name();
    nw.narrow_net(output, Signal::violation(Time::new(delta)));

    let mut report = VerifyReport {
        output,
        delta,
        verdict: Verdict::Possible,
        completeness: Completeness::Exact,
        before_gitd: StageVerdict::Possible,
        after_gitd: None,
        after_stems: None,
        backtracks: 0,
        solver: SolverStats::default(),
        stems: StemStats::default(),
        case: CaseStats::default(),
        stage_times: StageTimes::default(),
        effort: StageEffort::default(),
        elapsed: Duration::ZERO,
    };
    let base_stats = nw.stats();
    let finish = |mut report: VerifyReport, nw: &Narrower, start: Instant| {
        report.solver = nw.stats().since(&base_stats);
        report.elapsed = start.elapsed();
        report
    };

    // A budget trip inside a stage produces the same degraded report
    // everywhere: the verdict stays `Abandoned` (sound — the domains are a
    // superset of the fixpoint, so nothing was proven) and the completeness
    // marker records where and why the run was cut short.
    let exhausted = |stage: Stage, reason: TripReason| {
        (
            Verdict::Abandoned,
            Completeness::BudgetExhausted { stage, reason },
        )
    };

    // Stage 1: basic narrowing.
    failpoint::hit("check::narrowing", output_name);
    let stage_stats = nw.stats();
    let span = config.obs.start();
    let stage = Instant::now();
    let narrowed = nw.reach_fixpoint();
    report.stage_times.narrowing = stage.elapsed();
    report.effort.narrowing = nw.stats().since(&stage_stats);
    config.obs.span(
        "check.narrowing",
        "stage",
        span,
        &stage_span_args(output, delta, &report.effort.narrowing),
    );
    match narrowed {
        FixpointResult::Contradiction => {
            report.before_gitd = StageVerdict::NoViolation;
            report.verdict = Verdict::NoViolation {
                stage: Stage::Narrowing,
            };
            return finish(report, nw, start);
        }
        FixpointResult::Interrupted => {
            let reason = nw.budget_tripped().unwrap_or(TripReason::Deadline);
            (report.verdict, report.completeness) = exhausted(Stage::Narrowing, reason);
            return finish(report, nw, start);
        }
        FixpointResult::Fixpoint => {}
    }

    // Stage 2: global implications on timing dominators.
    if config.dominators {
        failpoint::hit("check::dominators", output_name);
        let stage_stats = nw.stats();
        let span = config.obs.start();
        let stage = Instant::now();
        let implied = fixpoint_with_dominators(nw, output, delta, true);
        report.stage_times.dominators = stage.elapsed();
        report.effort.dominators = nw.stats().since(&stage_stats);
        config.obs.span(
            "check.dominators",
            "stage",
            span,
            &stage_span_args(output, delta, &report.effort.dominators),
        );
        match implied {
            FixpointResult::Contradiction => {
                report.after_gitd = Some(StageVerdict::NoViolation);
                report.verdict = Verdict::NoViolation {
                    stage: Stage::Dominators,
                };
                return finish(report, nw, start);
            }
            FixpointResult::Interrupted => {
                let reason = nw.budget_tripped().unwrap_or(TripReason::Deadline);
                (report.verdict, report.completeness) = exhausted(Stage::Dominators, reason);
                return finish(report, nw, start);
            }
            FixpointResult::Fixpoint => {}
        }
        report.after_gitd = Some(StageVerdict::Possible);
    }

    // Stage 3: stem correlation.
    if config.stem_correlation {
        failpoint::hit("check::stems", output_name);
        let stage_stats = nw.stats();
        let span = config.obs.start();
        let stage = Instant::now();
        let candidates = match scope {
            Some(scope) => scope.stem_candidates,
            None => prepared.stem_candidates(),
        };
        let stems = correlation_stems_masked(nw, output, delta, candidates);
        let correlated = stem_correlation(
            nw,
            output,
            delta,
            &stems,
            config.dominators,
            &mut report.stems,
        );
        report.stage_times.stems = stage.elapsed();
        report.effort.stems = nw.stats().since(&stage_stats);
        config.obs.span(
            "check.stems",
            "stage",
            span,
            &[
                ("output", net_arg(output)),
                ("delta", delta),
                ("events", counter_arg(report.effort.stems.events)),
                ("stems", counter_arg(report.stems.stems)),
                ("effective", counter_arg(report.stems.effective_stems)),
                ("dead_branches", counter_arg(report.stems.dead_branches)),
            ],
        );
        match correlated {
            FixpointResult::Contradiction => {
                report.after_stems = Some(StageVerdict::NoViolation);
                report.verdict = Verdict::NoViolation {
                    stage: Stage::StemCorrelation,
                };
                return finish(report, nw, start);
            }
            FixpointResult::Interrupted => {
                let reason = nw.budget_tripped().unwrap_or(TripReason::Deadline);
                (report.verdict, report.completeness) = exhausted(Stage::StemCorrelation, reason);
                return finish(report, nw, start);
            }
            FixpointResult::Fixpoint => {}
        }
        report.after_stems = Some(StageVerdict::Possible);
    }

    // Stage 4: case analysis.
    if config.case_analysis {
        failpoint::hit("check::case-analysis", output_name);
        let case_cfg = CaseConfig {
            max_backtracks: config.max_backtracks,
            use_dominators: config.dominators,
            certify_vectors: config.certify_vectors && config.delay_mode == DelayMode::Floating,
        };
        let stage_stats = nw.stats();
        let span = config.obs.start();
        let stage = Instant::now();
        let outcome = crate::fan::case_analysis_scoped(
            nw,
            output,
            delta,
            &case_cfg,
            &mut report.case,
            prepared.controllability(),
            scope.map(|s| s.case),
        );
        report.stage_times.case_analysis = stage.elapsed();
        report.effort.case_analysis = nw.stats().since(&stage_stats);
        config.obs.span(
            "check.case_analysis",
            "stage",
            span,
            &[
                ("output", net_arg(output)),
                ("delta", delta),
                ("events", counter_arg(report.effort.case_analysis.events)),
                ("decisions", counter_arg(report.case.decisions)),
                ("backtracks", counter_arg(report.case.backtracks)),
                (
                    "decisions_dominator_cones",
                    counter_arg(report.case.decisions_by_phase[0]),
                ),
                (
                    "decisions_whole_circuit",
                    counter_arg(report.case.decisions_by_phase[1]),
                ),
                (
                    "decisions_backtrace",
                    counter_arg(report.case.decisions_by_phase[2]),
                ),
            ],
        );
        report.backtracks = report.case.backtracks;
        report.verdict = match outcome {
            CaseOutcome::Vector(vector) => Verdict::Violation { vector },
            CaseOutcome::NoViolation => Verdict::NoViolation {
                stage: Stage::CaseAnalysis,
            },
            CaseOutcome::Abandoned => {
                // Classic `A`-row abandonment (backtrack cap) and budget
                // trips land here alike; the completeness marker tells
                // them apart.
                let reason = nw.budget_tripped().unwrap_or(TripReason::Backtracks);
                report.completeness = Completeness::BudgetExhausted {
                    stage: Stage::CaseAnalysis,
                    reason,
                };
                Verdict::Abandoned
            }
        };
        return finish(report, nw, start);
    }

    report.verdict = Verdict::Possible;
    finish(report, nw, start)
}

/// Result of an exact-delay search on one output.
#[derive(Clone, Debug)]
pub struct DelaySearch {
    /// Largest δ for which a violation was demonstrated (the exact
    /// floating-mode delay when `proven_exact`).
    pub delay: i64,
    /// A vector achieving `delay`.
    pub vector: Option<Vec<bool>>,
    /// Whether `delay + 1` was *proven* impossible (otherwise `delay` is a
    /// lower bound and `upper_bound` the best upper bound).
    pub proven_exact: bool,
    /// Best proven upper bound (δ values above it are impossible).
    pub upper_bound: i64,
    /// Total backtracks across all probes.
    pub backtracks: u64,
    /// Reports of every probe, in probe order.
    pub probes: Vec<VerifyReport>,
}

/// Finds the exact floating-mode delay of `output` by binary search over δ
/// in `[0, top + 1]`, sharing one [`CheckSession`] (learning table, SCOAP,
/// base fixpoint) across probes.
///
/// Each probe is a full [`verify`] run; `Violation` raises the lower bound,
/// `NoViolation` lowers the upper bound, `Abandoned`/`Possible` terminates
/// the search with `proven_exact = false`.
pub fn exact_delay(circuit: &Circuit, output: NetId, config: &VerifyConfig) -> DelaySearch {
    CheckSession::new(circuit, config.clone()).exact_delay(output)
}

/// Verifies a δ against **all** outputs: returns `NoViolation` only when no
/// output can violate (the Table 1 semantics: "N: no violation of the
/// timing-check constraint on any circuit output is possible").
///
/// The base fixpoint (floating inputs, learning constants, but no δ
/// constraint) is computed **once** per session and every per-output check
/// is seeded from it. This is the serial entry point; use
/// [`BatchRunner::verify_all_outputs`](crate::BatchRunner::verify_all_outputs)
/// to fan the outputs over worker threads (same reports, by construction).
pub fn verify_all_outputs(
    circuit: &Circuit,
    delta: i64,
    config: &VerifyConfig,
) -> Vec<VerifyReport> {
    let session = CheckSession::new(circuit, config.clone());
    crate::batch::BatchRunner::serial()
        .verify_all_outputs(&session, delta)
        .reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltt_netlist::generators::{carry_skip_adder, cascade, false_path_chain, figure1};
    use ltt_netlist::suite::c17;
    use ltt_netlist::GateKind;

    #[test]
    fn figure1_pipeline_brackets_exact_delay() {
        let c = figure1(10);
        let s = c.outputs()[0];
        let config = VerifyConfig::default();
        let r61 = verify(&c, s, 61, &config);
        assert!(r61.verdict.is_no_violation());
        // Narrowing alone suffices at 61 (Example 2).
        assert_eq!(r61.before_gitd, StageVerdict::NoViolation);
        let r60 = verify(&c, s, 60, &config);
        match &r60.verdict {
            Verdict::Violation { vector } => {
                assert!(ltt_sta::vector_violates(&c, vector, s, 60));
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn exact_delay_search_on_figure1() {
        let c = figure1(10);
        let s = c.outputs()[0];
        let search = exact_delay(&c, s, &VerifyConfig::default());
        assert_eq!(search.delay, 60);
        assert!(search.proven_exact);
        assert_eq!(search.upper_bound, 60);
        let v = search.vector.expect("vector found");
        assert!(ltt_sta::vector_violates(&c, &v, s, 60));
    }

    #[test]
    fn exact_delay_matches_oracle_on_small_circuits() {
        let config = VerifyConfig::default();
        for c in [
            cascade(GateKind::And, 5, 10),
            cascade(GateKind::Or, 3, 10),
            false_path_chain(4, 3, 10),
            false_path_chain(5, 2, 10),
            carry_skip_adder(4, 2, 10),
        ] {
            for &s in c.outputs() {
                let oracle = ltt_sta::exhaustive_floating_delay(&c, s).expect("small");
                let search = exact_delay(&c, s, &config);
                assert!(search.proven_exact, "{} {:?}", c.name(), s);
                assert_eq!(
                    search.delay,
                    oracle.delay,
                    "{} output {}",
                    c.name(),
                    c.net(s).name()
                );
            }
        }
    }

    #[test]
    fn c17_exact_delay_is_topological() {
        let c = c17(10);
        let config = VerifyConfig::default();
        for &s in c.outputs() {
            let search = exact_delay(&c, s, &config);
            assert!(search.proven_exact);
            assert_eq!(search.delay, c.arrival_times()[s.index()]);
        }
    }

    #[test]
    fn narrowing_only_config_is_sound_but_weaker() {
        let c = figure1(10);
        let s = c.outputs()[0];
        let basic = VerifyConfig::narrowing_only();
        // Sound: it never claims a violation it cannot certify, and at
        // δ = 71 (past topological) even basic narrowing proves safety.
        let r = verify(&c, s, 71, &basic);
        assert!(r.verdict.is_no_violation());
        // At δ = 61 basic narrowing also succeeds on this small example.
        let r = verify(&c, s, 61, &basic);
        assert!(r.verdict.is_no_violation());
        // At δ = 60 it must stay inconclusive (case analysis disabled).
        let r = verify(&c, s, 60, &basic);
        assert_eq!(r.verdict, Verdict::Possible);
    }

    #[test]
    fn transition_mode_runs() {
        let c = figure1(10);
        let s = c.outputs()[0];
        let config = VerifyConfig {
            delay_mode: DelayMode::Transition,
            case_analysis: false,
            ..Default::default()
        };
        // With all inputs switching exactly at 0 the same settle bounds
        // apply; δ past topological is impossible.
        let r = verify(&c, s, 71, &config);
        assert!(r.verdict.is_no_violation());
    }

    #[test]
    fn verify_all_outputs_covers_every_output() {
        let c = c17(10);
        let reports = verify_all_outputs(&c, 31, &VerifyConfig::default());
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.verdict.is_no_violation()));
        let reports = verify_all_outputs(&c, 30, &VerifyConfig::default());
        assert!(reports.iter().any(|r| r.verdict.is_violation()));
    }

    #[test]
    fn learning_modes_agree_on_verdicts() {
        let c = false_path_chain(4, 3, 10);
        let s = c.outputs()[0];
        for delta in [55, 60, 61, 65, 71] {
            let mut verdicts = Vec::new();
            for learning in [LearningMode::Off, LearningMode::Stems, LearningMode::All] {
                let config = VerifyConfig {
                    learning,
                    ..Default::default()
                };
                verdicts.push(verify(&c, s, delta, &config).verdict.is_no_violation());
            }
            assert!(
                verdicts.windows(2).all(|w| w[0] == w[1]),
                "δ = {delta}: {verdicts:?}"
            );
        }
    }

    #[test]
    fn report_carries_stage_columns() {
        let c = figure1(10);
        let s = c.outputs()[0];
        let r = verify(&c, s, 60, &VerifyConfig::default());
        assert_eq!(r.before_gitd, StageVerdict::Possible);
        assert_eq!(r.after_gitd, Some(StageVerdict::Possible));
        assert_eq!(r.after_stems, Some(StageVerdict::Possible));
        assert!(r.elapsed.as_nanos() > 0);
        // The stage clocks partition a subset of the check's wall-clock.
        assert!(r.stage_times.total() <= r.elapsed);
        // All four stages ran on this check.
        assert!(r.stage_times.case_analysis.as_nanos() > 0);
    }
}

/// The per-δ result of [`delay_profile`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProfilePoint {
    /// The probed δ.
    pub delta: i64,
    /// Whether the (narrowing + dominators) system stayed consistent — a
    /// violation is still *possible* at this δ.
    pub possible: bool,
}

/// Sweeps δ over `deltas` (must be ascending) with **one** narrower:
/// because `violation(δ₂) ⊆ violation(δ₁)` for `δ₂ ≥ δ₁`, each step's
/// constraint refines the previous fixpoint and the whole profile costs
/// little more than the largest single check. Uses narrowing + dominator
/// implications (no search), so `possible = false` is a proof and
/// `possible = true` is the stage's residual pessimism.
///
/// Once a δ is refuted every later δ is refuted too (monotonicity), so the
/// sweep stops early and fills the tail.
///
/// This free function always runs plain floating-mode narrowing with
/// dominators and no learning; [`CheckSession::delay_profile`] is the
/// config-aware (and [`BatchRunner`](crate::BatchRunner)-parallelizable)
/// variant.
///
/// # Panics
///
/// Panics if `deltas` is not strictly ascending.
///
/// # Examples
///
/// ```
/// use ltt_core::delay_profile;
/// use ltt_netlist::generators::figure1;
///
/// let c = figure1(10);
/// let s = c.outputs()[0];
/// let profile = delay_profile(&c, s, &[40, 60, 61, 70]);
/// assert!(profile[0].possible);  // δ = 40: yes (true delay is 60)
/// assert!(profile[1].possible);  // δ = 60: yes
/// assert!(!profile[2].possible); // δ = 61: refuted
/// assert!(!profile[3].possible); // δ = 70: refuted (filled by monotonicity)
/// ```
pub fn delay_profile(circuit: &Circuit, output: NetId, deltas: &[i64]) -> Vec<ProfilePoint> {
    assert!(
        deltas.windows(2).all(|w| w[0] < w[1]),
        "deltas must be strictly ascending"
    );
    let mut nw = Narrower::new(circuit);
    for &i in circuit.inputs() {
        nw.narrow_net(i, Signal::floating_input());
    }
    nw.reach_fixpoint();
    let mut profile = Vec::with_capacity(deltas.len());
    let mut refuted = false;
    for &delta in deltas {
        if !refuted {
            nw.narrow_net(output, Signal::violation(Time::new(delta)));
            refuted = fixpoint_with_dominators(&mut nw, output, delta, true)
                == FixpointResult::Contradiction;
        }
        profile.push(ProfilePoint {
            delta,
            possible: !refuted,
        });
    }
    profile
}

#[cfg(test)]
mod profile_tests {
    use super::*;
    use ltt_netlist::generators::{cascade, figure1};
    use ltt_netlist::GateKind;

    #[test]
    fn profile_matches_individual_checks() {
        let c = figure1(10);
        let s = c.outputs()[0];
        let deltas: Vec<i64> = (0..=8).map(|k| k * 10 + 1).collect();
        let profile = delay_profile(&c, s, &deltas);
        let config = VerifyConfig {
            stem_correlation: false,
            case_analysis: false,
            ..Default::default()
        };
        for p in &profile {
            let individual = verify(&c, s, p.delta, &config);
            assert_eq!(
                p.possible,
                !individual.verdict.is_no_violation(),
                "δ = {}",
                p.delta
            );
        }
    }

    #[test]
    fn profile_is_monotone_and_tight_on_cascade() {
        let c = cascade(GateKind::And, 4, 10);
        let s = c.outputs()[0];
        let profile = delay_profile(&c, s, &[10, 20, 30, 40, 41, 50]);
        let flips: Vec<bool> = profile.iter().map(|p| p.possible).collect();
        assert_eq!(flips, vec![true, true, true, true, false, false]);
    }

    #[test]
    #[should_panic]
    fn profile_rejects_unsorted_deltas() {
        let c = cascade(GateKind::And, 2, 10);
        let _ = delay_profile(&c, c.outputs()[0], &[20, 10]);
    }
}

/// The exact floating-mode delay of the whole circuit: the maximum
/// [`exact_delay`] over all primary outputs, sharing one [`CheckSession`]
/// (learning table, SCOAP, base fixpoint). This is the quantity the
/// paper's Table 1 reports per circuit ("the value of δ for which a test
/// vector is found represents the exact floating-mode delay of the circuit
/// when the constraint system is inconsistent for (δ + 1) on all
/// outputs").
///
/// Returns the per-output searches alongside the circuit-level result.
///
/// # Examples
///
/// ```
/// use ltt_core::{exact_circuit_delay, VerifyConfig};
/// use ltt_netlist::suite::c17_nor;
///
/// let c = c17_nor(10);
/// let (delay, proven, _per_output) = exact_circuit_delay(&c, &VerifyConfig::default());
/// assert_eq!(delay, 50);
/// assert!(proven);
/// ```
pub fn exact_circuit_delay(
    circuit: &Circuit,
    config: &VerifyConfig,
) -> (i64, bool, Vec<DelaySearch>) {
    let session = CheckSession::new(circuit, config.clone());
    let searches = crate::batch::BatchRunner::serial().exact_delays(&session);
    let delay = searches.iter().map(|s| s.delay).max().unwrap_or(0);
    let proven = searches.iter().all(|s| s.proven_exact);
    (delay, proven, searches)
}

#[cfg(test)]
mod circuit_delay_tests {
    use super::*;
    use ltt_netlist::generators::{carry_skip_adder, figure1};

    #[test]
    fn figure1_circuit_delay_is_60() {
        let (delay, proven, per_output) =
            exact_circuit_delay(&figure1(10), &VerifyConfig::default());
        assert_eq!(delay, 60);
        assert!(proven);
        assert_eq!(per_output.len(), 1);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow without optimizations")]
    fn carry_skip_circuit_delay_covers_all_outputs() {
        let c = carry_skip_adder(8, 4, 10);
        let (delay, proven, per_output) = exact_circuit_delay(&c, &VerifyConfig::default());
        assert!(proven);
        assert_eq!(per_output.len(), c.outputs().len());
        // The circuit delay dominates every per-output delay.
        assert!(per_output.iter().all(|s| s.delay <= delay));
        // And it matches the exhaustive oracle's circuit delay.
        let oracle = ltt_sta::exhaustive_circuit_delay(&c).unwrap();
        assert_eq!(delay, oracle.delay);
    }
}
