//! Domain storage for the constraint system: one abstract signal per net,
//! with trail-based selective state saving for backtracking (§3.3).
//!
//! The store is laid out as a struct of dense, [`NetId`]-indexed planes
//! (see DESIGN.md §12):
//!
//! * the **bounds plane** `sig` — the four last-transition bounds
//!   (`lmin`/`max` per settling class) of every net, one flat `Copy` row
//!   per net so the hot narrowing loop touches a single cache line;
//! * the **value-lattice plane** `state` — one byte per net caching which
//!   classes are empty, so `fixed_class` / contradiction tests never
//!   reload the bounds row;
//! * the **dirty-flag plane** `stamp` — the decision-window epoch in which
//!   each net was last trailed, making trail writes first-write-wins.
//!
//! The trail itself is a bump arena: saving is a push, a
//! [`Checkpoint`] is a mark (arena length + window epoch), and
//! [`SignalStore::rollback`] is a pointer reset plus an O(changed) sweep
//! restoring the saved rows — never an O(nets) scan. A net narrowed k
//! times inside one decision window is saved once (its pre-window value),
//! so deep searches pay O(distinct nets changed), not O(narrowings).

use ltt_netlist::{Circuit, NetId};
use ltt_waveform::{Level, Signal};

/// Value-lattice bit: class 0 of the net is empty.
const EMPTY_ZERO: u8 = 1;
/// Value-lattice bit: class 1 of the net is empty.
const EMPTY_ONE: u8 = 2;
/// Both classes empty — the net is `(φ, φ)`, a contradiction.
const EMPTY_BOTH: u8 = EMPTY_ZERO | EMPTY_ONE;

#[inline]
fn lattice(s: Signal) -> u8 {
    u8::from(s[Level::Zero].is_empty()) | (u8::from(s[Level::One].is_empty()) << 1)
}

/// A checkpoint into the trail arena, returned by
/// [`SignalStore::checkpoint`] and consumed by [`SignalStore::rollback`]:
/// the arena length plus the decision-window epoch it opens.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Checkpoint {
    trail: usize,
    epoch: u64,
}

/// One saved pre-window value: the net, its bounds row, and the stamp it
/// carried before this window (restored on rollback so outer windows keep
/// their own first-write-wins accounting).
#[derive(Clone, Copy, Debug)]
struct TrailEntry {
    net: NetId,
    old: Signal,
    prev_stamp: u64,
}

/// The domains `D_1 … D_n` of the constraint system plus the undo trail.
///
/// Every mutation goes through [`SignalStore::narrow_to`], which
/// *intersects* the new value into the current one (narrowing is therefore
/// monotone by construction), records the pre-window value on the trail
/// (first write per decision window only), and reports whether anything
/// changed — the event the scheduler needs.
#[derive(Clone, Debug)]
pub struct SignalStore {
    /// Bounds plane, indexed by [`NetId::index`].
    sig: Vec<Signal>,
    /// Value-lattice plane: per-class emptiness bits.
    state: Vec<u8>,
    /// Dirty-flag plane: epoch of the last trail save per net. Empty until
    /// the first checkpoint materializes it (see [`SignalStore::checkpoint`]).
    stamp: Vec<u64>,
    /// Bump-arena trail of pre-window values.
    trail: Vec<TrailEntry>,
    /// Current decision-window epoch; 0 = no checkpoint taken, nothing to
    /// roll back to, so no trail writes at all (the base fixpoint is free).
    epoch: u64,
    /// Number of nets whose domain is `(φ, φ)` — maintained incrementally
    /// so the contradiction test and rollback are O(1)/O(changed).
    empty_nets: usize,
}

/// The pre-rewrite name of [`SignalStore`], kept for callers and tests.
pub type DomainStore = SignalStore;

impl SignalStore {
    /// Creates a store with every net's domain set to the full signal.
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.num_nets();
        SignalStore {
            sig: vec![Signal::FULL; n],
            state: vec![0; n],
            stamp: Vec::new(),
            trail: Vec::new(),
            epoch: 0,
            empty_nets: 0,
        }
    }

    /// Creates a store seeded with the given domains (e.g. a previously
    /// computed base fixpoint) and an empty trail. The lattice plane and
    /// contradiction count are derived from the seeded domains in the same
    /// pass; the stamp plane stays empty until the first checkpoint, so a
    /// seeded check that never backtracks (the common case in a batch)
    /// skips its allocation entirely.
    pub fn from_domains(domains: &[Signal]) -> Self {
        // memcpy the bounds plane first, then derive the lattice plane from
        // the still-cache-warm copy (measurably faster than one fused
        // element-wise loop, which defeats the block copy).
        let sig = domains.to_vec();
        let mut empty_nets = 0usize;
        let state: Vec<u8> = sig
            .iter()
            .map(|&d| {
                let s = lattice(d);
                empty_nets += usize::from(s == EMPTY_BOTH);
                s
            })
            .collect();
        SignalStore {
            sig,
            state,
            stamp: Vec::new(),
            trail: Vec::new(),
            epoch: 0,
            empty_nets,
        }
    }

    /// The current domain of a net.
    #[inline]
    pub fn get(&self, net: NetId) -> Signal {
        self.sig[net.index()]
    }

    /// All domains, indexed by [`NetId::index`].
    pub fn all(&self) -> &[Signal] {
        &self.sig
    }

    /// Whether some net's domain is empty (the system has no solution).
    #[inline]
    pub fn has_contradiction(&self) -> bool {
        self.empty_nets > 0
    }

    /// The single settling class of `net`, if exactly one class is
    /// non-empty — read off the lattice plane without touching the bounds
    /// row. Agrees with [`Signal::fixed_class`] on the stored signal.
    #[inline]
    pub(crate) fn fixed_class(&self, net: NetId) -> Option<Level> {
        match self.state[net.index()] {
            EMPTY_ZERO => Some(Level::One),
            EMPTY_ONE => Some(Level::Zero),
            _ => None,
        }
    }

    /// Saves the pre-window value of `net` if this is the first write to it
    /// in the current decision window (and there is a window at all).
    #[inline]
    fn save(&mut self, net: NetId, old: Signal) {
        if self.epoch == 0 {
            return; // no checkpoint exists: nothing can roll back here
        }
        let i = net.index();
        let prev = self.stamp[i];
        if prev == self.epoch {
            return; // already saved in this window: first write wins
        }
        self.stamp[i] = self.epoch;
        self.trail.push(TrailEntry {
            net,
            old,
            prev_stamp: prev,
        });
    }

    /// Installs `new` as the domain of slot `i`, updating the lattice plane
    /// and the contradiction count (handles both narrowing and widening).
    #[inline]
    fn commit(&mut self, i: usize, new: Signal) {
        self.sig[i] = new;
        let was = self.state[i];
        let now = lattice(new);
        self.state[i] = now;
        if now == EMPTY_BOTH {
            if was != EMPTY_BOTH {
                self.empty_nets += 1;
            }
        } else if was == EMPTY_BOTH {
            self.empty_nets -= 1;
        }
    }

    /// Narrows a net's domain to `target ∩ current`. Returns `true` if the
    /// domain changed (callers then schedule the net's constraints).
    ///
    /// Records the pre-window value on the trail for backtracking (first
    /// write per decision window only) and raises the contradiction count
    /// if the domain became `(φ, φ)`.
    pub fn narrow_to(&mut self, net: NetId, target: Signal) -> bool {
        let i = net.index();
        let old = self.sig[i];
        let new = old.intersect(target);
        if new == old {
            return false;
        }
        self.save(net, old);
        self.commit(i, new);
        true
    }

    /// Forcibly replaces a net's domain without intersecting (an escape
    /// hatch for callers that compute a sound narrowing externally, e.g. a
    /// union over case splits). The pre-window value is still recorded on
    /// the trail; the caller guarantees the new value contains all
    /// solutions. The contradiction count follows the replacement in both
    /// directions (a replace that un-empties the only empty net clears it).
    pub fn replace(&mut self, net: NetId, value: Signal) -> bool {
        let i = net.index();
        let old = self.sig[i];
        if value == old {
            return false;
        }
        self.save(net, old);
        self.commit(i, value);
        true
    }

    /// Opens a new decision window and marks the current arena position.
    pub fn checkpoint(&mut self) -> Checkpoint {
        // The stamp plane is materialized on the first checkpoint: `save`
        // only reads it when `epoch != 0`, which this method establishes.
        if self.stamp.len() < self.sig.len() {
            self.stamp.resize(self.sig.len(), 0);
        }
        self.epoch += 1;
        Checkpoint {
            trail: self.trail.len(),
            epoch: self.epoch,
        }
    }

    /// Restores every domain changed since the checkpoint — each net once,
    /// in reverse save order — and re-opens the checkpoint's decision
    /// window. O(distinct nets changed since the mark); the contradiction
    /// count is maintained incrementally, never re-derived by a scan.
    ///
    /// Checkpoints must be rolled back LIFO (the newest live mark first),
    /// which is what the case-analysis stack and stem correlation do.
    pub fn rollback(&mut self, mark: Checkpoint) {
        while self.trail.len() > mark.trail {
            let entry = self.trail.pop().expect("trail non-empty");
            let i = entry.net.index();
            self.stamp[i] = entry.prev_stamp;
            self.commit(i, entry.old);
        }
        self.epoch = mark.epoch;
    }

    /// Number of live trail entries (diagnostic). With first-write-wins
    /// saving this counts distinct nets changed since their windows opened,
    /// not total narrowings.
    pub fn trail_len(&self) -> usize {
        self.trail.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltt_netlist::{CircuitBuilder, DelayInterval, GateKind};
    use ltt_waveform::{Aw, Level, Time};

    fn circuit() -> (Circuit, NetId, NetId) {
        let mut b = CircuitBuilder::new("t");
        let a = b.input("a");
        let y = b.gate("y", GateKind::Not, &[a], DelayInterval::fixed(10));
        b.mark_output(y);
        (b.build().unwrap(), a, y)
    }

    #[test]
    fn starts_full() {
        let (c, a, y) = circuit();
        let d = SignalStore::new(&c);
        assert_eq!(d.get(a), Signal::FULL);
        assert_eq!(d.get(y), Signal::FULL);
        assert!(!d.has_contradiction());
    }

    #[test]
    fn narrow_is_intersection_and_reports_change() {
        let (c, a, _) = circuit();
        let mut d = SignalStore::new(&c);
        let v = Signal::violation(Time::new(5));
        assert!(d.narrow_to(a, v));
        assert_eq!(d.get(a), v);
        // Narrowing to the same thing is a no-op.
        assert!(!d.narrow_to(a, v));
        // Narrowing to something wider is also a no-op (intersection).
        assert!(!d.narrow_to(a, Signal::FULL));
    }

    #[test]
    fn contradiction_flag_rises_and_clears() {
        let (c, a, _) = circuit();
        let mut d = SignalStore::new(&c);
        let mark = d.checkpoint();
        d.narrow_to(
            a,
            Signal::single_class(Level::Zero, Aw::before(Time::new(3))),
        );
        assert!(!d.has_contradiction());
        d.narrow_to(a, Signal::single_class(Level::One, Aw::FULL));
        assert!(d.has_contradiction());
        d.rollback(mark);
        assert!(!d.has_contradiction());
        assert_eq!(d.get(a), Signal::FULL);
    }

    #[test]
    fn rollback_restores_in_reverse_order() {
        let (c, a, y) = circuit();
        let mut d = SignalStore::new(&c);
        let m0 = d.checkpoint();
        d.narrow_to(a, Signal::violation(Time::new(1)));
        let m1 = d.checkpoint();
        d.narrow_to(a, Signal::violation(Time::new(2)));
        d.narrow_to(y, Signal::violation(Time::new(3)));
        d.rollback(m1);
        assert_eq!(d.get(a), Signal::violation(Time::new(1)));
        assert_eq!(d.get(y), Signal::FULL);
        d.rollback(m0);
        assert_eq!(d.get(a), Signal::FULL);
    }

    #[test]
    fn replace_allows_widening_within_trail() {
        let (c, a, _) = circuit();
        let mut d = SignalStore::new(&c);
        let mark = d.checkpoint();
        d.narrow_to(a, Signal::violation(Time::new(10)));
        assert!(d.replace(a, Signal::violation(Time::new(5))));
        assert_eq!(d.get(a), Signal::violation(Time::new(5)));
        d.rollback(mark);
        assert_eq!(d.get(a), Signal::FULL);
    }

    /// The first-write-wins contract: k narrowings of one net inside one
    /// decision window store exactly one trail entry — the pre-window
    /// value — and rollback restores bit-identical state.
    #[test]
    fn repeated_narrowing_stores_one_snapshot_per_window() {
        let (c, a, _) = circuit();
        let mut d = SignalStore::new(&c);
        // Pre-window narrowings are not trailed at all (nothing to roll
        // back to) …
        d.narrow_to(a, Signal::violation(Time::new(1)));
        assert_eq!(d.trail_len(), 0);
        let before = d.get(a);
        let mark = d.checkpoint();
        // … and k in-window narrowings of the same net store one entry.
        for t in 2..12 {
            assert!(d.narrow_to(a, Signal::violation(Time::new(t))));
        }
        assert_eq!(d.trail_len(), 1);
        d.rollback(mark);
        assert_eq!(d.get(a), before);
        assert_eq!(d.trail_len(), 0);
    }

    /// Nested windows each save their own pre-window value of the same
    /// net, and unwinding restores every level exactly.
    #[test]
    fn nested_windows_renarrow_same_net() {
        let (c, a, y) = circuit();
        let mut d = SignalStore::new(&c);
        let v = |t: i64| Signal::violation(Time::new(t));
        let m0 = d.checkpoint();
        d.narrow_to(a, v(5));
        d.narrow_to(a, v(6)); // same window: not re-trailed
        let snap1 = (d.get(a), d.get(y));
        let m1 = d.checkpoint();
        d.narrow_to(a, v(7));
        d.narrow_to(y, v(7));
        d.narrow_to(a, v(8));
        assert_eq!(d.trail_len(), 3); // a@m0, a@m1, y@m1
        d.rollback(m1);
        assert_eq!((d.get(a), d.get(y)), snap1);
        // Re-opening the same window trails the net again.
        d.narrow_to(a, v(9));
        assert_eq!(d.trail_len(), 2);
        d.rollback(m1);
        assert_eq!((d.get(a), d.get(y)), snap1);
        d.rollback(m0);
        assert_eq!(d.get(a), Signal::FULL);
        assert_eq!(d.get(y), Signal::FULL);
    }

    #[test]
    fn lattice_plane_tracks_fixed_class() {
        let (c, a, _) = circuit();
        let mut d = SignalStore::new(&c);
        assert_eq!(d.fixed_class(a), None);
        d.narrow_to(a, Signal::single_class(Level::One, Aw::FULL));
        assert_eq!(d.fixed_class(a), Some(Level::One));
        assert_eq!(d.fixed_class(a), d.get(a).fixed_class());
    }
}
