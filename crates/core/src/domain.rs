//! Domain storage for the constraint system: one abstract signal per net,
//! with trail-based selective state saving for backtracking (§3.3).

use ltt_netlist::{Circuit, NetId};
use ltt_waveform::Signal;

/// A checkpoint into the trail, returned by [`DomainStore::checkpoint`] and
/// consumed by [`DomainStore::rollback`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Checkpoint(usize);

/// The domains `D_1 … D_n` of the constraint system plus the undo trail.
///
/// Every mutation goes through [`DomainStore::narrow_to`], which
/// *intersects* the new value into the current one (narrowing is therefore
/// monotone by construction), records the old value on the trail, and
/// reports whether anything changed — the event the scheduler needs.
#[derive(Clone, Debug)]
pub struct DomainStore {
    domains: Vec<Signal>,
    trail: Vec<(NetId, Signal)>,
    /// Set when any net's domain became `(φ, φ)` — the constraint system
    /// is inconsistent (no waveform assignment satisfies it).
    contradiction: bool,
}

impl DomainStore {
    /// Creates a store with every net's domain set to the full signal.
    pub fn new(circuit: &Circuit) -> Self {
        DomainStore {
            domains: vec![Signal::FULL; circuit.num_nets()],
            trail: Vec::new(),
            contradiction: false,
        }
    }

    /// Creates a store seeded with the given domains (e.g. a previously
    /// computed base fixpoint) and an empty trail. The contradiction flag
    /// is derived from the seeded domains.
    pub fn from_domains(domains: Vec<Signal>) -> Self {
        let contradiction = domains.iter().any(|d| d.is_empty());
        DomainStore {
            domains,
            trail: Vec::new(),
            contradiction,
        }
    }

    /// The current domain of a net.
    pub fn get(&self, net: NetId) -> Signal {
        self.domains[net.index()]
    }

    /// All domains, indexed by [`NetId::index`].
    pub fn all(&self) -> &[Signal] {
        &self.domains
    }

    /// Whether some net's domain is empty (the system has no solution).
    pub fn has_contradiction(&self) -> bool {
        self.contradiction
    }

    /// Narrows a net's domain to `target ∩ current`. Returns `true` if the
    /// domain changed (callers then schedule the net's constraints).
    ///
    /// Records the previous value on the trail for backtracking and raises
    /// the contradiction flag if the domain became `(φ, φ)`.
    pub fn narrow_to(&mut self, net: NetId, target: Signal) -> bool {
        let old = self.domains[net.index()];
        let new = old.intersect(target);
        if new == old {
            return false;
        }
        self.trail.push((net, old));
        self.domains[net.index()] = new;
        if new.is_empty() {
            self.contradiction = true;
        }
        true
    }

    /// Forcibly replaces a net's domain without intersecting (an escape
    /// hatch for callers that compute a sound narrowing externally, e.g. a
    /// union over case splits). The old value is still recorded on the
    /// trail; the caller guarantees the new value contains all solutions.
    pub fn replace(&mut self, net: NetId, value: Signal) -> bool {
        let old = self.domains[net.index()];
        if value == old {
            return false;
        }
        self.trail.push((net, old));
        self.domains[net.index()] = value;
        if value.is_empty() {
            self.contradiction = true;
        }
        true
    }

    /// Marks the current trail position.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint(self.trail.len())
    }

    /// Restores every domain changed since the checkpoint (in reverse
    /// order) and clears the contradiction flag (re-derived lazily).
    pub fn rollback(&mut self, mark: Checkpoint) {
        while self.trail.len() > mark.0 {
            let (net, old) = self.trail.pop().expect("trail non-empty");
            self.domains[net.index()] = old;
        }
        self.contradiction = self.domains.iter().any(|d| d.is_empty());
    }

    /// Number of trail entries (diagnostic).
    pub fn trail_len(&self) -> usize {
        self.trail.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltt_netlist::{CircuitBuilder, DelayInterval, GateKind};
    use ltt_waveform::{Aw, Level, Time};

    fn circuit() -> (Circuit, NetId, NetId) {
        let mut b = CircuitBuilder::new("t");
        let a = b.input("a");
        let y = b.gate("y", GateKind::Not, &[a], DelayInterval::fixed(10));
        b.mark_output(y);
        (b.build().unwrap(), a, y)
    }

    #[test]
    fn starts_full() {
        let (c, a, y) = circuit();
        let d = DomainStore::new(&c);
        assert_eq!(d.get(a), Signal::FULL);
        assert_eq!(d.get(y), Signal::FULL);
        assert!(!d.has_contradiction());
    }

    #[test]
    fn narrow_is_intersection_and_reports_change() {
        let (c, a, _) = circuit();
        let mut d = DomainStore::new(&c);
        let v = Signal::violation(Time::new(5));
        assert!(d.narrow_to(a, v));
        assert_eq!(d.get(a), v);
        // Narrowing to the same thing is a no-op.
        assert!(!d.narrow_to(a, v));
        // Narrowing to something wider is also a no-op (intersection).
        assert!(!d.narrow_to(a, Signal::FULL));
    }

    #[test]
    fn contradiction_flag_rises_and_clears() {
        let (c, a, _) = circuit();
        let mut d = DomainStore::new(&c);
        let mark = d.checkpoint();
        d.narrow_to(
            a,
            Signal::single_class(Level::Zero, Aw::before(Time::new(3))),
        );
        assert!(!d.has_contradiction());
        d.narrow_to(a, Signal::single_class(Level::One, Aw::FULL));
        assert!(d.has_contradiction());
        d.rollback(mark);
        assert!(!d.has_contradiction());
        assert_eq!(d.get(a), Signal::FULL);
    }

    #[test]
    fn rollback_restores_in_reverse_order() {
        let (c, a, y) = circuit();
        let mut d = DomainStore::new(&c);
        let m0 = d.checkpoint();
        d.narrow_to(a, Signal::violation(Time::new(1)));
        let m1 = d.checkpoint();
        d.narrow_to(a, Signal::violation(Time::new(2)));
        d.narrow_to(y, Signal::violation(Time::new(3)));
        d.rollback(m1);
        assert_eq!(d.get(a), Signal::violation(Time::new(1)));
        assert_eq!(d.get(y), Signal::FULL);
        d.rollback(m0);
        assert_eq!(d.get(a), Signal::FULL);
    }

    #[test]
    fn replace_allows_widening_within_trail() {
        let (c, a, _) = circuit();
        let mut d = DomainStore::new(&c);
        let mark = d.checkpoint();
        d.narrow_to(a, Signal::violation(Time::new(10)));
        assert!(d.replace(a, Signal::violation(Time::new(5))));
        assert_eq!(d.get(a), Signal::violation(Time::new(5)));
        d.rollback(mark);
        assert_eq!(d.get(a), Signal::FULL);
    }
}
