//! Static and dynamic carriers and timing dominators (§4).
//!
//! A net can only *cause* a violation of the timing check `σ = (ξ, s, δ)`
//! if a long-enough path connects it to `s` (static carriers, Def. 4) and —
//! after narrowing — if its current domain still allows a transition late
//! enough to reach `s`'s last-transition interval (dynamic carriers,
//! Def. 7). Every violation-carrying path lies inside the carrier circuit,
//! so the nets on *all* its paths (the dominators of the reversed carrier
//! DAG, Defs. 6/9) must themselves transition at or after `δ − distance`
//! (Lemma 3 / Theorem 3), which Corollary 1 turns into a sound global
//! narrowing: the **global implication on timing dominators** (G.I.T.D.)
//! that the paper's Table 1 evaluates.

use ltt_netlist::dominators::Dominators;
use ltt_netlist::{Circuit, NetId};
use ltt_waveform::{Signal, Time};

/// Carrier distances: `distance[net] = Some(k)` iff the net is a carrier
/// with (dynamic or static) distance `k` — the longest time a transition
/// there can take to reach the checked output.
pub type CarrierDistances = Vec<Option<i64>>;

/// Computes the *static* carriers of `(ξ, s, δ)` and their distances
/// `top_{x→s}` (Definition 4: nets on some input→s path of length ≥ δ).
pub fn static_carriers(circuit: &Circuit, s: NetId, delta: i64) -> CarrierDistances {
    let arrival = circuit.arrival_times();
    let to_s = circuit.longest_to(s);
    circuit
        .net_ids()
        .map(|x| match to_s[x.index()] {
            Some(dist) if arrival[x.index()] + dist >= delta => Some(dist),
            _ => None,
        })
        .collect()
}

/// Computes the *dynamic* carriers of `(ξ, s, δ)` and their dynamic
/// distances (Definitions 7–8), from the current domains.
///
/// `s` is a 0-dynamic-carrier if its domain is non-empty; an input `x` of a
/// gate (max delay `d`) driving a `k`-carrier is a `(k + d)`-carrier
/// provided its domain still allows a transition at or after `δ − (k + d)`.
/// The distance recorded is the maximum over paths, computed in one
/// reverse-topological sweep.
pub fn dynamic_carriers(
    circuit: &Circuit,
    domains: &[Signal],
    s: NetId,
    delta: i64,
) -> CarrierDistances {
    let mut dist: CarrierDistances = vec![None; circuit.num_nets()];
    if domains[s.index()].is_empty() {
        return dist;
    }
    dist[s.index()] = Some(0);
    for &gid in circuit.topo_gates().iter().rev() {
        let gate = circuit.gate(gid);
        let Some(k) = dist[gate.output().index()] else {
            continue;
        };
        let cand = k + i64::from(gate.dmax());
        for &x in gate.inputs() {
            if domains[x.index()].can_transition_at_or_after(Time::new(delta - cand))
                && dist[x.index()].is_none_or(|cur| cand > cur)
            {
                dist[x.index()] = Some(cand);
            }
        }
    }
    dist
}

/// The timing dominators of the carrier circuit: nets lying on **every**
/// carrier path from `s` to the carrier inputs (Definitions 6/9), ordered
/// from `s` outwards (so `d_0 = s`).
///
/// The carrier circuit is reversed into a single-source DAG Ψ′ (source
/// `s`, sink **T** fed by every dead-end carrier) and the dominator chain
/// of **T** is read off.
pub fn timing_dominators(circuit: &Circuit, carriers: &CarrierDistances, s: NetId) -> Vec<NetId> {
    if carriers[s.index()].is_none() {
        return Vec::new();
    }
    // Compact vertex numbering: carrier nets in reverse circuit-topological
    // order (s is topologically last among carriers, hence first here),
    // then the sink T.
    let mut order: Vec<NetId> = Vec::new();
    let mut slot = vec![usize::MAX; circuit.num_nets()];
    // Net topological order: inputs, then gate outputs in topo gate order.
    let mut net_topo: Vec<NetId> = circuit.inputs().to_vec();
    net_topo.extend(
        circuit
            .topo_gates()
            .iter()
            .map(|&g| circuit.gate(g).output()),
    );
    for &net in net_topo.iter().rev() {
        if carriers[net.index()].is_some() && slot[net.index()] == usize::MAX {
            slot[net.index()] = order.len();
            order.push(net);
        }
    }
    debug_assert_eq!(order.first(), Some(&s), "s is the deepest carrier");
    let t = order.len(); // sink vertex id
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); t + 1];
    for (yi, &y) in order.iter().enumerate() {
        if let Some(driver) = circuit.net(y).driver() {
            for &x in circuit.gate(driver).inputs() {
                if carriers[x.index()].is_some() {
                    preds[slot[x.index()]].push(yi);
                }
            }
        }
    }
    // Dead ends (carrier inputs of Ψ and carriers whose gate has no carrier
    // inputs) feed T.
    for (yi, &y) in order.iter().enumerate() {
        let is_dead_end = match circuit.net(y).driver() {
            None => true,
            Some(driver) => circuit
                .gate(driver)
                .inputs()
                .iter()
                .all(|x| carriers[x.index()].is_none()),
        };
        if is_dead_end {
            preds[t].push(yi);
        }
    }
    let topo: Vec<usize> = (0..=t).collect();
    let dom = Dominators::compute(&preds, 0, &topo);
    // The timing dominators are T's strict dominators, i.e. its chain minus
    // T itself, from T back to s; reverse to run s-outward.
    let mut chain = dom.chain(t);
    chain.reverse(); // now starts at the source s, ends at T
    chain.pop(); // drop T
    chain.into_iter().map(|v| order[v]).collect()
}

/// Corollary 1: the narrowing targets implied by the timing dominators —
/// `(net, lmin)` pairs meaning "intersect the net's domain with waveforms
/// transitioning at or after `lmin = δ − distance`".
pub fn dominator_narrowings(
    dominators: &[NetId],
    carriers: &CarrierDistances,
    delta: i64,
) -> Vec<(NetId, Time)> {
    dominators
        .iter()
        .map(|&d| {
            let k = carriers[d.index()].expect("dominators are carriers");
            (d, Time::new(delta - k))
        })
        .collect()
}

use crate::solver::{FixpointResult, Narrower};

/// The `evaluate` loop of the paper's Fig. 4: run the event queue to a
/// fixpoint, then (if `use_dominators`) compute the dynamic timing
/// dominators and apply the Corollary 1 narrowings; repeat until neither
/// step changes anything.
///
/// Returns the final [`FixpointResult`]; on
/// [`FixpointResult::Contradiction`] no violation of `(ξ, s, δ)` is
/// possible. [`FixpointResult::Interrupted`] (an attached budget tripped)
/// is passed straight through: the domains are then a superset of the
/// fixpoint and the dominator step would be wasted work.
pub fn fixpoint_with_dominators(
    nw: &mut Narrower,
    s: NetId,
    delta: i64,
    use_dominators: bool,
) -> FixpointResult {
    loop {
        match nw.reach_fixpoint() {
            FixpointResult::Contradiction => return FixpointResult::Contradiction,
            FixpointResult::Interrupted => return FixpointResult::Interrupted,
            FixpointResult::Fixpoint => {}
        }
        if !use_dominators {
            return FixpointResult::Fixpoint;
        }
        let carriers = dynamic_carriers(nw.circuit(), nw.domains(), s, delta);
        let doms = timing_dominators(nw.circuit(), &carriers, s);
        let mut changed = false;
        for (net, lmin) in dominator_narrowings(&doms, &carriers, delta) {
            changed |= nw.narrow_net(net, Signal::violation(lmin));
        }
        if !changed {
            return FixpointResult::Fixpoint;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltt_netlist::generators::{carry_skip_adder, cascade, figure1};
    use ltt_netlist::{CircuitBuilder, DelayInterval, GateKind};

    #[test]
    fn static_carriers_of_cascade_are_everything_at_top() {
        let c = cascade(GateKind::And, 3, 10);
        let s = c.outputs()[0];
        let carriers = static_carriers(&c, s, 30);
        // Only the e0 → n1 → n2 → n3 spine is on a 30-path; side inputs
        // e2, e3 arrive too late to start one… actually e1 feeds n1: path
        // e1→n1→n2→n3 has length 30 too. e3 feeds n3: length 10.
        let e0 = c.net_by_name("e0").unwrap();
        let e3 = c.net_by_name("e3").unwrap();
        assert_eq!(carriers[e0.index()], Some(30));
        assert_eq!(carriers[e3.index()], None);
        assert_eq!(carriers[s.index()], Some(0));
    }

    #[test]
    fn cascade_dominators_are_the_spine() {
        let c = cascade(GateKind::And, 3, 10);
        let s = c.outputs()[0];
        let carriers = static_carriers(&c, s, 30);
        let doms = timing_dominators(&c, &carriers, s);
        // Every 30-path runs through the whole spine: n1, n2, n3 (= s).
        let names: Vec<&str> = doms.iter().map(|&n| c.net(n).name()).collect();
        assert_eq!(names, vec!["n3", "n2", "n1"]);
    }

    #[test]
    fn figure1_static_carriers_at_61() {
        let c = figure1(10);
        let s = c.outputs()[0];
        let carriers = static_carriers(&c, s, 61);
        // Only the 70-path nets qualify: e1, e2, n1..n4, n6, n7, s.
        for name in ["n1", "n2", "n3", "n4", "n6", "n7", "s", "e1", "e2"] {
            let n = c.net_by_name(name).unwrap();
            assert!(carriers[n.index()].is_some(), "{name} should be a carrier");
        }
        for name in ["n5", "e3", "e4", "e5", "e6", "e7"] {
            let n = c.net_by_name(name).unwrap();
            assert!(
                carriers[n.index()].is_none(),
                "{name} should not be a carrier"
            );
        }
        // Distances along the single chain.
        let n4 = c.net_by_name("n4").unwrap();
        assert_eq!(carriers[n4.index()], Some(30));
    }

    #[test]
    fn figure1_dominators_are_the_false_path() {
        let c = figure1(10);
        let s = c.outputs()[0];
        let carriers = static_carriers(&c, s, 61);
        let doms = timing_dominators(&c, &carriers, s);
        let names: Vec<&str> = doms.iter().map(|&n| c.net(n).name()).collect();
        // The unique > 60 path is a chain: every net on it dominates.
        assert_eq!(names, vec!["s", "n7", "n6", "n4", "n3", "n2", "n1"]);
    }

    #[test]
    fn dynamic_carriers_respect_domains() {
        let c = figure1(10);
        let s = c.outputs()[0];
        // With full domains, dynamic carriers at δ=61 match the static ones
        // on the spine (domains allow any transition).
        let domains = vec![Signal::FULL; c.num_nets()];
        let dyn_c = dynamic_carriers(&c, &domains, s, 61);
        let stat_c = static_carriers(&c, s, 61);
        // Statically the spine nets carry; dynamically with FULL domains
        // even more nets qualify (no settling bounds yet), but the spine
        // must be included.
        for (i, st) in stat_c.iter().enumerate() {
            if st.is_some() {
                assert!(dyn_c[i].is_some());
            }
        }
        // Restricting inputs to floating mode removes the too-early nets
        // once settle bounds are propagated — covered in check-level tests.
    }

    #[test]
    fn dynamic_carriers_empty_when_output_dead() {
        let c = figure1(10);
        let s = c.outputs()[0];
        let mut domains = vec![Signal::FULL; c.num_nets()];
        domains[s.index()] = Signal::EMPTY;
        let dyn_c = dynamic_carriers(&c, &domains, s, 61);
        assert!(dyn_c.iter().all(|d| d.is_none()));
    }

    #[test]
    fn carry_skip_dominators_cross_blocks() {
        // The paper's Figure 2 argument: all paths to the last carry longer
        // than δ−1 contain the previous block-carry nets.
        let c = carry_skip_adder(8, 4, 10);
        let cout = c.net_by_name("cout").unwrap();
        let top = c.arrival_times()[cout.index()];
        let carriers = static_carriers(&c, cout, top);
        let doms = timing_dominators(&c, &carriers, cout);
        let names: Vec<&str> = doms.iter().map(|&n| c.net(n).name()).collect();
        // The block-boundary carries C1 (and the final C2) dominate.
        assert!(names.contains(&"C1"), "dominators: {names:?}");
    }

    #[test]
    fn reconvergence_removes_dominators() {
        // Diamond: a → {p, q} → y; p and q do not dominate, a and y do.
        let mut b = CircuitBuilder::new("d");
        let a = b.input("a");
        let p = b.gate("p", GateKind::Not, &[a], DelayInterval::fixed(10));
        let q = b.gate("q", GateKind::Buffer, &[a], DelayInterval::fixed(10));
        let y = b.gate("y", GateKind::And, &[p, q], DelayInterval::fixed(10));
        b.mark_output(y);
        let c = b.build().unwrap();
        let carriers = static_carriers(&c, y, 20);
        let doms = timing_dominators(&c, &carriers, y);
        let names: Vec<&str> = doms.iter().map(|&n| c.net(n).name()).collect();
        assert_eq!(names, vec!["y", "a"]);
    }

    #[test]
    fn dominator_narrowings_use_delta_minus_distance() {
        let c = cascade(GateKind::And, 3, 10);
        let s = c.outputs()[0];
        let carriers = static_carriers(&c, s, 30);
        let doms = timing_dominators(&c, &carriers, s);
        let narrowings = dominator_narrowings(&doms, &carriers, 30);
        for (net, lmin) in narrowings {
            let k = carriers[net.index()].unwrap();
            assert_eq!(lmin, Time::new(30 - k));
        }
    }
}
