//! Waveform-narrowing gate-level timing verification with propagation of
//! last-transition-time constraints.
//!
//! This crate is a from-scratch implementation of Kassab, Cerny, Aourid &
//! Krodel, *"Propagation of Last-Transition-Time Constraints in Gate-Level
//! Timing Analysis"* (DATE 1998). The timing check `σ = (ξ, s, δ)` — *can
//! output `s` of circuit `ξ` transition at or after time `δ`?* — becomes a
//! constraint-satisfaction problem over abstract signals
//! ([`ltt_waveform::Signal`]); the pipeline then applies, in order:
//!
//! 1. **Waveform narrowing** ([`Narrower`], [`projection`]) — event-driven
//!    chaotic iteration of sound per-gate interval projections to the
//!    greatest fixpoint (§3, Fig. 4), optionally boosted by SOCRATES-style
//!    **static learning** ([`ImplicationTable`]);
//! 2. **Global implications on timing dominators** ([`carriers`]) — every
//!    violation-carrying path runs through the dominators of the
//!    (static/dynamic) carrier circuit, so waveforms settling before
//!    `δ − distance` are removed there (§4, Lemma 3 / Theorem 3 /
//!    Corollary 1);
//! 3. **Stem correlation** ([`stems`]) — per-stem class splits whose union
//!    removes waveforms incompatible with both classes (§5);
//! 4. **Case analysis** ([`fan`]) — FAN-adapted, SCOAP-guided waveform
//!    splitting that finds a certified violating test vector or proves no
//!    violation is possible (§5).
//!
//! The top-level entry points are [`verify`] (one check, with the per-stage
//! verdicts of the paper's Table 1), [`verify_all_outputs`], and
//! [`exact_delay`] (binary search for the exact floating-mode delay).
//!
//! Workloads with many checks per circuit — all outputs at one δ, a delay
//! search, a benchmark suite — should open a [`CheckSession`] (which
//! computes every per-circuit analysis once via [`PreparedCircuit`] and
//! seeds each check from a shared base fixpoint) and fan the checks out
//! with a [`BatchRunner`]; parallel results are bit-identical to serial
//! ones by construction.
//!
//! # Example
//!
//! The paper's running example (Fig. 1 / Example 2): topological delay 70,
//! floating-mode delay 60 because the longest path is false.
//!
//! ```
//! use ltt_core::{exact_delay, verify, VerifyConfig};
//! use ltt_netlist::generators::figure1;
//!
//! let circuit = figure1(10);
//! let s = circuit.outputs()[0];
//! let config = VerifyConfig::default();
//!
//! // δ = 61: proven impossible (the 70-path cannot propagate).
//! assert!(verify(&circuit, s, 61, &config).verdict.is_no_violation());
//!
//! // Exact delay: 60, with a certified witness vector.
//! let search = exact_delay(&circuit, s, &config);
//! assert_eq!(search.delay, 60);
//! assert!(search.proven_exact);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod budget;
pub mod carriers;
mod check;
pub mod domain;
pub mod error;
pub mod explain;
pub mod failpoint;
pub mod fan;
pub mod learning;
pub mod obs;
pub mod prepared;
pub mod projection;
pub mod scoap;
pub mod solver;
pub mod stems;

pub use batch::{available_jobs, BatchCheck, BatchError, BatchOutcome, BatchRunner, BatchSummary};
pub use budget::{ArmedBudget, Budget, CancelToken, TripReason};
pub use check::{
    delay_profile, exact_circuit_delay, exact_delay, verify, verify_all_outputs, verify_under,
    verify_with_learning, Completeness, ConeMode, DelayMode, DelaySearch, Engine, LearningMode,
    ProfilePoint, Stage, StageEffort, StageTimes, StageVerdict, Verdict, VerifyConfig,
    VerifyReport,
};
pub use domain::{Checkpoint, DomainStore, SignalStore};
pub use error::{CheckError, Error};
pub use explain::{explain, Explanation};
pub use fan::{fill_level, CaseConfig, CaseOutcome, CaseScope, CaseStats};
pub use learning::ImplicationTable;
pub use obs::{Obs, Recorder, Span, SpanStart};
pub use prepared::{CheckSession, ConeAnalysis, PreparedCircuit};
pub use projection::{project, GateProjection};
pub use solver::{FixpointResult, NarrowScope, Narrower, SolverStats};
pub use stems::StemStats;
