//! Second verification backend: CNF/CDCL differential oracle.
//!
//! This crate re-decides the floating-mode timing check σ = (ξ, s, δ)
//! with a completely independent method: [`encode`] unrolls the
//! last-transition-time semantics into CNF over per-net settle grids, and
//! [`cdcl`] is a clean-room CDCL solver (two-watched literals, first-UIP
//! learning, Luby restarts) that polls the core's `Budget`/`CancelToken`
//! so it composes with the resilience layer.
//!
//! [`engine`] layers the `--engine {narrow, sat, hybrid}` dispatch on
//! top of `ltt-core`'s narrowing pipeline: `hybrid` falls back to SAT
//! when narrowing exhausts its budget, tightening the delay interval
//! instead of giving up. Because the two backends share no code beyond
//! the netlist, agreement between them (fuzzed in
//! `tests/engine_differential.rs`) is strong evidence against soundness
//! bugs in either.

pub mod cdcl;
pub mod encode;
pub mod engine;

pub use cdcl::{CdclStats, Lit, SatResult, Solver, Var};
pub use encode::{encode_check, CnfCheck, EncodeError, Encoded};
pub use engine::{
    exact_delay, exact_delay_budgeted, exact_delay_with_engine, run_checks, sat_decide, verify,
    verify_budgeted, verify_with_engine, SatCheck, SatVerdict,
};
