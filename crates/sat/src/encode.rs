//! CNF encoding of the floating-mode timing check σ = (ξ, s, δ).
//!
//! The floating-mode settle rule (see `ltt_sta::floating_settle`) is a
//! *function* of the input vector: every net gets a settled value and a
//! last-transition time, inputs settling at 0 and a gate output settling
//! `d` after its earliest controlling input (if one exists under the
//! vector) or its latest input otherwise. The encoding unrolls exactly
//! that recurrence:
//!
//! * one **value variable** `v(n)` per cone net — the settled Boolean
//!   value, constrained by ordinary gate consistency clauses;
//! * one **threshold variable** `g(n, T)` per net and *reachable* settle
//!   time `T`, meaning `settle(n) ≥ T`.
//!
//! Time is quantized to each net's *settle grid*: `grid(input) = {0}` and
//! `grid(o) = {t + d : t ∈ ∪ᵢ grid(inᵢ)}`. Since the settle rule only
//! ever takes min/max over input settle times and adds `d`, the actual
//! settle time always lies on the grid — the quantization is *lossless*,
//! which is what makes the backend an exact differential oracle rather
//! than a conservative approximation. Queries `settle(n) ≥ x` for
//! off-grid `x` round up to the next grid point (`settle ∈ grid` makes
//! the two equivalent) and constant-fold to true/false past the ends.
//!
//! For a gate with controlling value `c` and delay `d`, write
//! `C = ∨ᵢ cᵢ` (some input is controlling, `cᵢ ⇔ v(inᵢ) = c`) and
//! `x = T − d`. The rule becomes
//!
//! ```text
//! settle(o) ≥ T  ⇔  C ? ∧ᵢ (cᵢ → settle(inᵢ) ≥ x)   — earliest controlling
//!                     : ∨ᵢ (settle(inᵢ) ≥ x)          — latest input
//! ```
//!
//! which is Tseitin-translated with one `okᵢ ⇔ (cᵢ → geqᵢ)` helper per
//! (gate, T, input). XOR/XNOR and the unary kinds have no controlling
//! value (pure max rule); MUX uses its dedicated decomposition
//! `settle = min(via_select, via_data) + d` mirroring the simulator.
//!
//! The check itself is one unit clause `settle(s) ≥ δ`: a model is an
//! input vector whose floating-mode delay reaches δ (a violation witness,
//! decodable with [`Encoded::witness`]); UNSAT proves no vector violates.

use crate::cdcl::{Lit, Solver, Var};
use ltt_core::{Budget, TripReason};
use ltt_netlist::{Circuit, GateKind, NetId};

/// Hard cap on threshold variables, guarding against grid blow-up on
/// adversarial delay structures (the grid is exact, not sampled, so wide
/// reconvergence with incommensurate delays can explode it).
const MAX_THRESHOLD_VARS: usize = 4_000_000;

/// A literal or a constant-folded truth value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Plit {
    True,
    False,
    L(Lit),
}

impl Plit {
    fn negated(self) -> Plit {
        match self {
            Plit::True => Plit::False,
            Plit::False => Plit::True,
            Plit::L(l) => Plit::L(l.negated()),
        }
    }
}

/// Clause builder with constant folding: `True` satisfies the clause
/// (skip), `False` literals drop out.
fn add_clause(solver: &mut Solver, lits: &[Plit]) {
    let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
    for &p in lits {
        match p {
            Plit::True => return,
            Plit::False => {}
            Plit::L(l) => c.push(l),
        }
    }
    solver.add_clause(&c);
}

/// Why a check could not be encoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EncodeError {
    /// The exact settle grid exceeded [`MAX_THRESHOLD_VARS`] variables.
    GridTooLarge {
        /// Threshold variables the grid would have needed.
        needed: usize,
    },
    /// The budget tripped while building the encoding (gate-strided poll,
    /// so encoding composes with deadlines the same way solving does).
    Budget(TripReason),
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::GridTooLarge { needed } => {
                write!(
                    f,
                    "settle grid needs {needed} threshold vars (cap {MAX_THRESHOLD_VARS})"
                )
            }
            EncodeError::Budget(reason) => write!(f, "budget tripped while encoding: {reason}"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// Result of encoding a check: either decided outright by grid analysis
/// or a CNF instance ready to solve.
pub enum Encoded {
    /// δ is at or below the smallest reachable settle time: *every* vector
    /// violates (the all-false vector is as good a witness as any).
    AlwaysViolated,
    /// δ exceeds the largest reachable settle time (the topological bound
    /// on the quantized grid): no vector can violate.
    NeverViolated,
    /// A CNF instance; SAT ⇔ some vector violates. Boxed: the loaded
    /// solver dwarfs the data-free variants.
    Cnf(Box<CnfCheck>),
}

/// An encoded check plus the variable maps needed to decode a model.
pub struct CnfCheck {
    /// The loaded solver.
    pub solver: Solver,
    /// `(input slot in the circuit's input list, value variable)` for each
    /// primary input inside the checked output's cone.
    input_vars: Vec<(usize, Var)>,
    num_inputs: usize,
}

impl CnfCheck {
    /// Decodes a model into a full-width input vector (non-cone inputs
    /// are fixed at `false`, matching the exhaustive oracle).
    pub fn witness(&self, model: &[bool]) -> Vec<bool> {
        let mut vector = vec![false; self.num_inputs];
        for &(slot, var) in &self.input_vars {
            vector[slot] = model[var as usize];
        }
        vector
    }
}

/// Per-net encoding state: the settle grid and its threshold variables.
struct NetEnc {
    /// Sorted, deduplicated reachable settle times.
    grid: Vec<i64>,
    /// `thresh[j]` ⇔ `settle ≥ grid[j + 1]` (the first grid point is the
    /// unconditional minimum, so it needs no variable).
    thresh: Vec<Var>,
    value: Var,
}

impl NetEnc {
    /// The literal/constant for `settle(net) ≥ x`.
    fn geq(&self, x: i64) -> Plit {
        let first = *self.grid.first().expect("grid non-empty");
        if x <= first {
            return Plit::True;
        }
        // Smallest grid index with grid[idx] ≥ x; settle ∈ grid makes
        // `settle ≥ x` ⇔ `settle ≥ grid[idx]`.
        match self.grid.binary_search(&x) {
            Ok(idx) => Plit::L(Lit::pos(self.thresh[idx - 1])),
            Err(idx) if idx < self.grid.len() => Plit::L(Lit::pos(self.thresh[idx - 1])),
            Err(_) => Plit::False,
        }
    }
}

/// Encodes the check `(output, δ)` over the output's fan-in cone,
/// polling `budget` between gates so a deadline aborts encoding too.
pub fn encode_check(
    circuit: &Circuit,
    output: NetId,
    delta: i64,
    budget: &Budget,
) -> Result<Encoded, EncodeError> {
    let mut armed = budget.arm();
    let cone = circuit.fanin_cone(output);
    let mut solver = Solver::new();
    let mut nets: Vec<Option<NetEnc>> = (0..circuit.num_nets()).map(|_| None).collect();

    // Value variables and (settle) grids for cone inputs.
    let mut input_vars = Vec::new();
    for (slot, &net) in circuit.inputs().iter().enumerate() {
        if cone[net.index()] {
            let value = solver.new_var();
            input_vars.push((slot, value));
            nets[net.index()] = Some(NetEnc {
                grid: vec![0],
                thresh: Vec::new(),
                value,
            });
        }
    }

    // First pass: grids in topological order, with the blow-up guard.
    let mut thresh_budget = MAX_THRESHOLD_VARS;
    for &gid in circuit.topo_gates() {
        if let Some(reason) = armed.poll(0) {
            return Err(EncodeError::Budget(reason));
        }
        let gate = circuit.gate(gid);
        let o = gate.output();
        if !cone[o.index()] {
            continue;
        }
        let d = i64::from(gate.dmax());
        let mut grid: Vec<i64> = Vec::new();
        for n in gate.inputs() {
            let enc = nets[n.index()].as_ref().expect("cone inputs precede gate");
            grid.extend(enc.grid.iter().map(|&t| t + d));
        }
        grid.sort_unstable();
        grid.dedup();
        let need = grid.len() - 1;
        if need > thresh_budget {
            let needed = MAX_THRESHOLD_VARS - thresh_budget + need;
            return Err(EncodeError::GridTooLarge { needed });
        }
        thresh_budget -= need;
        let value = solver.new_var();
        let thresh: Vec<Var> = (0..need).map(|_| solver.new_var()).collect();
        // Monotonicity ladder: settle ≥ grid[j+1] implies settle ≥ grid[j].
        for w in thresh.windows(2) {
            solver.add_clause(&[Lit::neg(w[1]), Lit::pos(w[0])]);
        }
        nets[o.index()] = Some(NetEnc {
            grid,
            thresh,
            value,
        });
    }

    // The check is one threshold query on the output.
    let delta_lit = match nets[output.index()]
        .as_ref()
        .expect("output in cone")
        .geq(delta)
    {
        Plit::True => return Ok(Encoded::AlwaysViolated),
        Plit::False => return Ok(Encoded::NeverViolated),
        Plit::L(l) => l,
    };

    // Second pass: value and timing clauses per gate.
    for &gid in circuit.topo_gates() {
        if let Some(reason) = armed.poll(0) {
            return Err(EncodeError::Budget(reason));
        }
        let gate = circuit.gate(gid);
        let o = gate.output();
        if !cone[o.index()] {
            continue;
        }
        let d = i64::from(gate.dmax());
        let in_nets: Vec<usize> = gate.inputs().iter().map(|n| n.index()).collect();
        let vo = nets[o.index()].as_ref().expect("encoded").value;
        let vin: Vec<Var> = in_nets
            .iter()
            .map(|&n| nets[n].as_ref().expect("encoded").value)
            .collect();
        encode_values(&mut solver, gate.kind(), vo, &vin);
        encode_timing(&mut solver, &mut nets, gate.kind(), d, o.index(), &in_nets);
    }

    solver.add_clause(&[delta_lit]);
    Ok(Encoded::Cnf(Box::new(CnfCheck {
        solver,
        input_vars,
        num_inputs: circuit.inputs().len(),
    })))
}

/// Gate consistency clauses `v(o) ⇔ kind(v(in…))`.
fn encode_values(solver: &mut Solver, kind: GateKind, vo: Var, vin: &[Var]) {
    let o = Lit::pos(vo);
    match kind {
        GateKind::And | GateKind::Nand => {
            // a = ∧ inputs; for NAND the output literal is inverted.
            let a = if kind == GateKind::And {
                o
            } else {
                o.negated()
            };
            let mut all: Vec<Lit> = vin.iter().map(|&v| Lit::neg(v)).collect();
            all.push(a);
            solver.add_clause(&all);
            for &v in vin {
                solver.add_clause(&[a.negated(), Lit::pos(v)]);
            }
        }
        GateKind::Or | GateKind::Nor => {
            let a = if kind == GateKind::Or { o } else { o.negated() };
            let mut any: Vec<Lit> = vin.iter().map(|&v| Lit::pos(v)).collect();
            any.push(a.negated());
            solver.add_clause(&any);
            for &v in vin {
                solver.add_clause(&[a, Lit::neg(v)]);
            }
        }
        GateKind::Not => {
            solver.add_clause(&[o, Lit::pos(vin[0])]);
            solver.add_clause(&[o.negated(), Lit::neg(vin[0])]);
        }
        GateKind::Buffer | GateKind::Delay => {
            solver.add_clause(&[o, Lit::neg(vin[0])]);
            solver.add_clause(&[o.negated(), Lit::pos(vin[0])]);
        }
        GateKind::Xor | GateKind::Xnor => {
            // Chain of binary parities; the final one equals the output
            // (inverted for XNOR).
            let mut acc = Lit::pos(vin[0]);
            for &v in &vin[1..vin.len() - 1] {
                let p = Lit::pos(solver.new_var());
                encode_xor(solver, p, acc, Lit::pos(v));
                acc = p;
            }
            let target = if kind == GateKind::Xor {
                o
            } else {
                o.negated()
            };
            encode_xor(solver, target, acc, Lit::pos(vin[vin.len() - 1]));
        }
        GateKind::Mux => {
            let (s, a, b) = (Lit::pos(vin[0]), Lit::pos(vin[1]), Lit::pos(vin[2]));
            // ¬sel → (o ⇔ a); sel → (o ⇔ b).
            solver.add_clause(&[s, o.negated(), a]);
            solver.add_clause(&[s, o, a.negated()]);
            solver.add_clause(&[s.negated(), o.negated(), b]);
            solver.add_clause(&[s.negated(), o, b.negated()]);
        }
    }
}

/// `t ⇔ a ⊕ b`.
fn encode_xor(solver: &mut Solver, t: Lit, a: Lit, b: Lit) {
    solver.add_clause(&[t.negated(), a, b]);
    solver.add_clause(&[t.negated(), a.negated(), b.negated()]);
    solver.add_clause(&[t, a, b.negated()]);
    solver.add_clause(&[t, a.negated(), b]);
}

/// Timing clauses defining every threshold variable of `o`.
fn encode_timing(
    solver: &mut Solver,
    nets: &mut [Option<NetEnc>],
    kind: GateKind,
    d: i64,
    o: usize,
    in_nets: &[usize],
) {
    let out_grid: Vec<i64> = nets[o].as_ref().expect("encoded").grid.clone();
    let out_thresh: Vec<Var> = nets[o].as_ref().expect("encoded").thresh.clone();

    match kind {
        GateKind::Not | GateKind::Buffer | GateKind::Delay => {
            // settle(o) = settle(in) + d.
            for (j, &t) in out_grid.iter().enumerate().skip(1) {
                let g = Plit::L(Lit::pos(out_thresh[j - 1]));
                let q = nets[in_nets[0]].as_ref().expect("encoded").geq(t - d);
                add_clause(solver, &[g.negated(), q]);
                add_clause(solver, &[g, q.negated()]);
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            // No controlling value: settle(o) = max settle(in) + d.
            for (j, &t) in out_grid.iter().enumerate().skip(1) {
                let g = Plit::L(Lit::pos(out_thresh[j - 1]));
                let qs: Vec<Plit> = in_nets
                    .iter()
                    .map(|&n| nets[n].as_ref().expect("encoded").geq(t - d))
                    .collect();
                let mut fwd = vec![g.negated()];
                fwd.extend(qs.iter().copied());
                add_clause(solver, &fwd);
                for &q in &qs {
                    add_clause(solver, &[g, q.negated()]);
                }
            }
        }
        GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
            let cv = kind.controlling_value().expect("controlling kind");
            // cᵢ: "input i sits at the controlling value".
            let cs: Vec<Lit> = in_nets
                .iter()
                .map(|&n| Lit::new(nets[n].as_ref().expect("encoded").value, cv))
                .collect();
            // cvar ⇔ ∨ cᵢ, shared across all thresholds of this gate.
            let cvar = Lit::pos(solver.new_var());
            let mut any = vec![cvar.negated()];
            any.extend(cs.iter().copied());
            solver.add_clause(&any);
            for &c in &cs {
                solver.add_clause(&[cvar, c.negated()]);
            }
            for (j, &t) in out_grid.iter().enumerate().skip(1) {
                let g = Lit::pos(out_thresh[j - 1]);
                let x = t - d;
                let qs: Vec<Plit> = in_nets
                    .iter()
                    .map(|&n| nets[n].as_ref().expect("encoded").geq(x))
                    .collect();
                // okᵢ ⇔ (cᵢ → settle(inᵢ) ≥ x), folded when qᵢ is constant.
                let oks: Vec<Plit> = cs
                    .iter()
                    .zip(&qs)
                    .map(|(&c, &q)| match q {
                        Plit::True => Plit::True,
                        Plit::False => Plit::L(c.negated()),
                        Plit::L(ql) => {
                            let ok = Lit::pos(solver.new_var());
                            solver.add_clause(&[ok.negated(), c.negated(), ql]);
                            solver.add_clause(&[ok, c]);
                            solver.add_clause(&[ok, ql.negated()]);
                            Plit::L(ok)
                        }
                    })
                    .collect();
                // g → okᵢ (controlling inputs must all be ≥ x).
                for &ok in &oks {
                    add_clause(solver, &[Plit::L(g.negated()), ok]);
                }
                // g → (C ∨ some input ≥ x).
                let mut fwd = vec![Plit::L(g.negated()), Plit::L(cvar)];
                fwd.extend(qs.iter().copied());
                add_clause(solver, &fwd);
                // (C ∧ ∧ okᵢ) → g.
                let mut bwd = vec![Plit::L(cvar.negated()), Plit::L(g)];
                bwd.extend(oks.iter().map(|ok| ok.negated()));
                add_clause(solver, &bwd);
                // (¬C ∧ some input ≥ x) → g.
                for &q in &qs {
                    add_clause(solver, &[Plit::L(cvar), q.negated(), Plit::L(g)]);
                }
            }
        }
        GateKind::Mux => {
            // settle = min(via_select, via_data) + d with
            //   via_select = max(t_sel, sel ? t_b : t_a)
            //   via_data   = v_a = v_b ? max(t_a, t_b) : ∞
            let (ns, na, nb) = (in_nets[0], in_nets[1], in_nets[2]);
            let sel = Lit::pos(nets[ns].as_ref().expect("encoded").value);
            let va = Lit::pos(nets[na].as_ref().expect("encoded").value);
            let vb = Lit::pos(nets[nb].as_ref().expect("encoded").value);
            // dvar ⇔ v_a ⊕ v_b (data disagree ⇒ via_data = ∞).
            let dvar = Lit::pos(solver.new_var());
            encode_xor(solver, dvar, va, vb);
            for (j, &t) in out_grid.iter().enumerate().skip(1) {
                let g = Lit::pos(out_thresh[j - 1]);
                let x = t - d;
                let qs = nets[ns].as_ref().expect("encoded").geq(x);
                let qa = nets[na].as_ref().expect("encoded").geq(x);
                let qb = nets[nb].as_ref().expect("encoded").geq(x);
                // vs ⇔ via_select ≥ x ⇔ qs ∨ (sel ? qb : qa).
                let vs = if qs == Plit::True {
                    Plit::True
                } else {
                    let vs = Lit::pos(solver.new_var());
                    add_clause(solver, &[Plit::L(vs.negated()), qs, Plit::L(sel), qa]);
                    add_clause(
                        solver,
                        &[Plit::L(vs.negated()), qs, Plit::L(sel.negated()), qb],
                    );
                    add_clause(solver, &[qs.negated(), Plit::L(vs)]);
                    add_clause(solver, &[Plit::L(sel.negated()), qb.negated(), Plit::L(vs)]);
                    add_clause(solver, &[Plit::L(sel), qa.negated(), Plit::L(vs)]);
                    Plit::L(vs)
                };
                // vd ⇔ via_data ≥ x ⇔ dvar ∨ qa ∨ qb.
                let vd = if qa == Plit::True || qb == Plit::True {
                    Plit::True
                } else {
                    let vd = Lit::pos(solver.new_var());
                    add_clause(solver, &[Plit::L(vd.negated()), Plit::L(dvar), qa, qb]);
                    add_clause(solver, &[Plit::L(dvar.negated()), Plit::L(vd)]);
                    add_clause(solver, &[qa.negated(), Plit::L(vd)]);
                    add_clause(solver, &[qb.negated(), Plit::L(vd)]);
                    Plit::L(vd)
                };
                // g ⇔ vs ∧ vd (min rule: both routes must still be ≥ x).
                add_clause(solver, &[Plit::L(g.negated()), vs]);
                add_clause(solver, &[Plit::L(g.negated()), vd]);
                add_clause(solver, &[Plit::L(g), vs.negated(), vd.negated()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltt_core::Budget;
    use ltt_sta::vector_violates;

    /// SAT-decides a check and cross-checks any witness with the exact
    /// simulator.
    fn sat_violated(c: &Circuit, output: NetId, delta: i64) -> bool {
        match encode_check(c, output, delta, &Budget::unlimited()).expect("small circuits encode") {
            Encoded::AlwaysViolated => true,
            Encoded::NeverViolated => false,
            Encoded::Cnf(mut cnf) => match cnf.solver.solve(&Budget::unlimited()) {
                crate::cdcl::SatResult::Sat(model) => {
                    let w = cnf.witness(&model);
                    assert!(
                        vector_violates(c, &w, output, delta),
                        "witness fails certification at δ={delta}"
                    );
                    true
                }
                crate::cdcl::SatResult::Unsat => false,
                crate::cdcl::SatResult::Unknown(r) => panic!("unlimited tripped: {r:?}"),
            },
        }
    }

    /// Sweeps δ around the exact delay and asserts agreement with the
    /// exhaustive oracle at every point.
    fn assert_matches_oracle(c: &Circuit, output: NetId) {
        let exact = ltt_sta::exhaustive_floating_delay(c, output).expect("small cone");
        for delta in [
            exact.delay - 15,
            exact.delay - 1,
            exact.delay,
            exact.delay + 1,
            exact.delay + 15,
            c.topological_delay() + 1,
        ] {
            assert_eq!(
                sat_violated(c, output, delta),
                exact.delay >= delta,
                "{}: δ={delta}, exact={}",
                c.name(),
                exact.delay
            );
        }
    }

    #[test]
    fn figure1_matches_oracle() {
        let c = ltt_netlist::generators::figure1(10);
        assert_matches_oracle(&c, c.outputs()[0]);
    }

    #[test]
    fn cascade_and_parity_match_oracle() {
        for kind in [GateKind::And, GateKind::Or, GateKind::Nand, GateKind::Nor] {
            let c = ltt_netlist::generators::cascade(kind, 5, 10);
            assert_matches_oracle(&c, c.outputs()[0]);
        }
        let c = ltt_netlist::generators::parity_tree(6, 10);
        assert_matches_oracle(&c, c.outputs()[0]);
    }

    #[test]
    fn false_path_chain_matches_oracle() {
        let c = ltt_netlist::generators::false_path_chain(3, 2, 10);
        assert_matches_oracle(&c, c.outputs()[0]);
    }

    #[test]
    fn mux_chain_matches_oracle() {
        let c = ltt_netlist::generators::shared_select_mux_chain(3, 10);
        assert_matches_oracle(&c, c.outputs()[0]);
    }

    #[test]
    fn ripple_carry_all_outputs_match_oracle() {
        let c = ltt_netlist::generators::ripple_carry_adder(3, 10);
        for &o in c.outputs() {
            assert_matches_oracle(&c, o);
        }
    }

    #[test]
    fn carry_skip_adder_matches_oracle() {
        let c = ltt_netlist::generators::carry_skip_adder(3, 3, 10);
        for &o in c.outputs() {
            assert_matches_oracle(&c, o);
        }
    }

    #[test]
    fn random_circuits_match_oracle() {
        use ltt_netlist::generators::{random_circuit, RandomCircuitConfig};
        for seed in 0..12 {
            let config = RandomCircuitConfig {
                num_inputs: 6,
                num_gates: 24,
                max_fanin: 3,
                num_outputs: 2,
                seed: 0xE0C0 + seed,
                ..Default::default()
            };
            let c = random_circuit(&config);
            for &o in c.outputs() {
                assert_matches_oracle(&c, o);
            }
        }
    }

    #[test]
    fn trivial_bounds_constant_fold() {
        let c = ltt_netlist::generators::figure1(10);
        let s = c.outputs()[0];
        // δ ≤ min settle time: every vector violates.
        assert!(matches!(
            encode_check(&c, s, 0, &Budget::unlimited()).unwrap(),
            Encoded::AlwaysViolated
        ));
        // δ above the topological bound: none can.
        assert!(matches!(
            encode_check(&c, s, c.topological_delay() + 1, &Budget::unlimited()).unwrap(),
            Encoded::NeverViolated
        ));
    }
}
