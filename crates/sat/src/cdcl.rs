//! A clean-room CDCL SAT solver.
//!
//! The feature set is the classic MiniSat recipe: unit propagation over
//! two-watched literals, first-UIP conflict-clause learning, VSIDS-style
//! activity decisions with phase saving, and Luby-sequence restarts. The
//! clause store is a single flat literal arena (the struct-of-arrays style
//! the narrowing core adopted in its store rewrite): a clause is a
//! `(start, len)` span into one `Vec<Lit>`, so clause access is an index
//! computation and learning never allocates per-clause boxes.
//!
//! The solver composes with the resilience layer by polling an
//! [`ArmedBudget`] from the propagation loop: wall-clock, absolute
//! deadlines, cancellation tokens, and the event cap all abort the search
//! with [`SatResult::Unknown`] — never a wrong verdict, because a CDCL run
//! only *reports* SAT on a full consistent assignment and UNSAT on a
//! root-level conflict, both of which are checked facts independent of how
//! the search was scheduled.

use ltt_core::failpoint;
use ltt_core::{Budget, TripReason};

/// A propositional variable, numbered from 0.
pub type Var = u32;

/// A literal: variable plus polarity, packed as `var << 1 | positive`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Lit(u32);

impl Lit {
    /// The literal `var` (positive) or `¬var` (negative).
    pub fn new(var: Var, positive: bool) -> Lit {
        Lit(var << 1 | u32::from(positive))
    }

    /// The positive literal of `var`.
    pub fn pos(var: Var) -> Lit {
        Lit::new(var, true)
    }

    /// The negative literal of `var`.
    pub fn neg(var: Var) -> Lit {
        Lit::new(var, false)
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        self.0 >> 1
    }

    /// Whether this is the positive literal.
    pub fn positive(self) -> bool {
        self.0 & 1 == 1
    }

    /// The opposite literal.
    #[must_use]
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Truth value of a variable in the current (partial) assignment.
const UNDEF: u8 = 2;

/// Outcome of a CDCL run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment was found; `model[v]` is the value of
    /// variable `v`.
    Sat(Vec<bool>),
    /// The clause set is unsatisfiable.
    Unsat,
    /// The budget tripped before the search finished.
    Unknown(TripReason),
}

/// Clause span in the literal arena. Index 0 is the watched/asserting slot.
#[derive(Clone, Copy, Debug)]
struct Clause {
    start: u32,
    len: u32,
}

type ClauseId = u32;

#[derive(Clone, Copy)]
struct Watch {
    clause: ClauseId,
    /// Cached literal of the clause; if it is already true the clause is
    /// satisfied and the watch scan skips the arena access entirely.
    blocker: Lit,
}

/// Max-heap over variable activities (MiniSat's order heap): `pos[v]` is
/// the heap slot of `v`, or `usize::MAX` when not enqueued.
#[derive(Default)]
struct OrderHeap {
    heap: Vec<Var>,
    pos: Vec<usize>,
}

impl OrderHeap {
    fn grow_to(&mut self, n: usize) {
        while self.pos.len() < n {
            self.pos.push(usize::MAX);
        }
    }

    fn contains(&self, v: Var) -> bool {
        self.pos[v as usize] != usize::MAX
    }

    fn push(&mut self, v: Var, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v as usize] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn pop(&mut self, act: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.pos[top as usize] = usize::MAX;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn bumped(&mut self, v: Var, act: &[f64]) {
        let p = self.pos[v as usize];
        if p != usize::MAX {
            self.sift_up(p, act);
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i] as usize] <= act[self.heap[parent] as usize] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l] as usize] > act[self.heap[best] as usize] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r] as usize] > act[self.heap[best] as usize] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a] as usize] = a;
        self.pos[self.heap[b] as usize] = b;
    }
}

/// Luby restart unit, in conflicts.
const RESTART_UNIT: u64 = 64;

/// Cumulative solver-effort counters, reported alongside the result.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CdclStats {
    /// Unit propagations performed.
    pub propagations: u64,
    /// Conflicts analyzed (equals learned clauses).
    pub conflicts: u64,
    /// Decisions taken.
    pub decisions: u64,
    /// Restarts performed.
    pub restarts: u64,
}

/// The solver. Add variables and clauses, then [`Solver::solve`].
pub struct Solver {
    num_vars: u32,
    /// Flat literal arena; clauses are spans into it.
    arena: Vec<Lit>,
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watch>>,
    assign: Vec<u8>,
    /// Decision level at which each variable was assigned.
    level: Vec<u32>,
    /// Clause that implied each variable (`None` for decisions).
    reason: Vec<Option<ClauseId>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    order: OrderHeap,
    /// Saved phase per variable (phase saving across restarts).
    phase: Vec<bool>,
    /// Scratch for conflict analysis.
    seen: Vec<bool>,
    /// False once an empty clause was derived at level 0.
    ok: bool,
    /// Statistics of the last `solve` call.
    pub stats: CdclStats,
}

impl Solver {
    /// An empty solver (no variables, no clauses).
    pub fn new() -> Solver {
        Solver {
            num_vars: 0,
            arena: Vec::new(),
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            order: OrderHeap::default(),
            phase: Vec::new(),
            seen: Vec::new(),
            ok: true,
            stats: CdclStats::default(),
        }
    }

    /// Allocates a fresh variable and returns it.
    pub fn new_var(&mut self) -> Var {
        let v = self.num_vars;
        self.num_vars += 1;
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.assign.push(UNDEF);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.order.grow_to(self.num_vars as usize);
        self.order.push(v, &self.activity);
        v
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    fn value(&self, l: Lit) -> Option<bool> {
        match self.assign[l.var() as usize] {
            UNDEF => None,
            a => Some((a == 1) == l.positive()),
        }
    }

    fn decision_level(&self) -> u32 {
        u32::try_from(self.trail_lim.len()).expect("decision levels fit u32")
    }

    /// Adds a clause. Tautologies are dropped, duplicate and root-false
    /// literals removed; an empty result makes the instance UNSAT, a unit
    /// result is enqueued at the root level. Returns `false` once the
    /// instance is known UNSAT (further adds are ignored).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0, "clauses are added at the root");
        if !self.ok {
            return false;
        }
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            debug_assert!(l.var() < self.num_vars, "literal over unallocated var");
            match self.value(l) {
                Some(true) => return true, // already satisfied at root
                Some(false) => continue,   // root-false literal: drop
                None => {
                    if c.contains(&l.negated()) {
                        return true; // tautology
                    }
                    if !c.contains(&l) {
                        c.push(l);
                    }
                }
            }
        }
        match c.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(c[0], None);
                // Propagate eagerly so later root adds see the implication.
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach(&c);
                true
            }
        }
    }

    fn attach(&mut self, c: &[Lit]) -> ClauseId {
        let id = u32::try_from(self.clauses.len()).expect("clause count fits u32");
        let start = u32::try_from(self.arena.len()).expect("arena offset fits u32");
        let len = u32::try_from(c.len()).expect("clause length fits u32");
        self.arena.extend_from_slice(c);
        self.clauses.push(Clause { start, len });
        // `watches[l]` holds the clauses currently watching literal `l`;
        // they are scanned when `l` becomes false.
        self.watches[c[0].idx()].push(Watch {
            clause: id,
            blocker: c[1],
        });
        self.watches[c[1].idx()].push(Watch {
            clause: id,
            blocker: c[0],
        });
        id
    }

    fn span(&self, id: ClauseId) -> (usize, usize) {
        let c = self.clauses[id as usize];
        (c.start as usize, c.len as usize)
    }

    fn enqueue(&mut self, l: Lit, reason: Option<ClauseId>) {
        debug_assert_eq!(self.value(l), None);
        let v = l.var() as usize;
        self.assign[v] = u8::from(l.positive());
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.phase[v] = l.positive();
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause, if any.
    fn propagate(&mut self) -> Option<ClauseId> {
        let mut conflict = None;
        while conflict.is_none() && self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = p.negated();
            let mut ws = std::mem::take(&mut self.watches[false_lit.idx()]);
            let mut i = 0;
            let mut j = 0;
            'watches: while i < ws.len() {
                let w = ws[i];
                i += 1;
                if self.value(w.blocker) == Some(true) {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let (start, len) = self.span(w.clause);
                // Normalize: the false literal sits in slot 1.
                if self.arena[start] == false_lit {
                    self.arena.swap(start, start + 1);
                }
                let first = self.arena[start];
                if first != w.blocker && self.value(first) == Some(true) {
                    ws[j] = Watch {
                        clause: w.clause,
                        blocker: first,
                    };
                    j += 1;
                    continue;
                }
                // Look for a non-false literal to watch instead.
                for k in start + 2..start + len {
                    if self.value(self.arena[k]) != Some(false) {
                        self.arena.swap(start + 1, k);
                        self.watches[self.arena[start + 1].idx()].push(Watch {
                            clause: w.clause,
                            blocker: first,
                        });
                        continue 'watches;
                    }
                }
                // Clause is unit (or conflicting) under the assignment.
                ws[j] = Watch {
                    clause: w.clause,
                    blocker: first,
                };
                j += 1;
                if self.value(first) == Some(false) {
                    // Conflict: keep the remaining watches and stop.
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                    conflict = Some(w.clause);
                    break;
                }
                self.enqueue(first, Some(w.clause));
            }
            ws.truncate(j);
            self.watches[false_lit.idx()] = ws;
        }
        conflict
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v as usize] += self.var_inc;
        if self.activity[v as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bumped(v, &self.activity);
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal in slot 0) and the backtrack level.
    fn analyze(&mut self, conflict: ClauseId) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(0)]; // slot 0 patched below
        let mut counter = 0usize;
        let mut confl = conflict;
        let mut index = self.trail.len();
        let mut expanding_reason = false;
        let mut cleanup: Vec<Var> = Vec::new();
        let asserting = loop {
            let (start, len) = self.span(confl);
            // A reason clause's slot 0 is the literal it implied — skip it.
            let begin = if expanding_reason { start + 1 } else { start };
            for k in begin..start + len {
                let q = self.arena[k];
                let v = q.var();
                if !self.seen[v as usize] && self.level[v as usize] > 0 {
                    self.seen[v as usize] = true;
                    cleanup.push(v);
                    self.bump_var(v);
                    if self.level[v as usize] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var() as usize] {
                    break;
                }
            }
            let p = self.trail[index];
            counter -= 1;
            if counter == 0 {
                break p;
            }
            confl = self.reason[p.var() as usize].expect("non-decision on conflict path");
            expanding_reason = true;
        };
        learnt[0] = asserting.negated();
        for v in cleanup {
            self.seen[v as usize] = false;
        }
        let bt = if learnt.len() == 1 {
            0
        } else {
            // Second-highest level literal moves to the watch slot 1.
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var() as usize] > self.level[learnt[max_i].var() as usize] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var() as usize]
        };
        (learnt, bt)
    }

    fn backtrack_to(&mut self, lvl: u32) {
        if self.decision_level() <= lvl {
            return;
        }
        let bound = self.trail_lim[lvl as usize];
        for k in (bound..self.trail.len()).rev() {
            let v = self.trail[k].var();
            self.assign[v as usize] = UNDEF;
            self.reason[v as usize] = None;
            self.order.push(v, &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(lvl as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch(&mut self) -> Option<Var> {
        loop {
            let v = self.order.pop(&self.activity)?;
            if self.assign[v as usize] == UNDEF {
                return Some(v);
            }
        }
    }

    /// The i-th term (1-based) of the Luby sequence: 1 1 2 1 1 2 4 …
    fn luby(mut i: u64) -> u64 {
        // Find the subsequence this index falls in.
        let mut k = 1u32;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
        while (1u64 << k) - 1 != i {
            i -= (1u64 << (k - 1)) - 1;
            k = 1;
            while (1u64 << k) - 1 < i {
                k += 1;
            }
        }
        1u64 << (k - 1)
    }

    /// Runs the CDCL search under `budget`. Returns a model, an UNSAT
    /// proof outcome, or [`SatResult::Unknown`] when the budget trips.
    pub fn solve(&mut self, budget: &Budget) -> SatResult {
        self.stats = CdclStats::default();
        if !self.ok {
            return SatResult::Unsat;
        }
        let mut armed = budget.arm();
        let mut restart_num: u64 = 0;
        let mut conflicts_left = RESTART_UNIT * Self::luby(1);
        loop {
            failpoint::hit("sat::propagate", "cdcl");
            // Poll every round: the armed budget strides its own clock
            // reads, so this is a counter check in the common case.
            if let Some(reason) = armed.poll(self.stats.propagations) {
                return SatResult::Unknown(reason);
            }
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_left = conflicts_left.saturating_sub(1);
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SatResult::Unsat;
                }
                let (learnt, bt) = self.analyze(conflict);
                self.backtrack_to(bt);
                if learnt.len() == 1 {
                    self.enqueue(learnt[0], None);
                } else {
                    let id = self.attach(&learnt);
                    self.enqueue(learnt[0], Some(id));
                }
                self.var_inc /= 0.95;
            } else {
                if conflicts_left == 0 {
                    // Luby restart; also a natural point for a clock read.
                    self.stats.restarts += 1;
                    restart_num += 1;
                    conflicts_left = RESTART_UNIT * Self::luby(restart_num + 1);
                    self.backtrack_to(0);
                    if let Some(reason) = armed.poll_now() {
                        return SatResult::Unknown(reason);
                    }
                    continue;
                }
                match self.pick_branch() {
                    None => {
                        let model: Vec<bool> = self.assign.iter().map(|&a| a == 1).collect();
                        self.backtrack_to(0);
                        return SatResult::Sat(model);
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let phase = self.phase[v as usize];
                        self.enqueue(Lit::new(v, phase), None);
                    }
                }
            }
        }
    }
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(spec: &[i32]) -> Vec<Lit> {
        spec.iter()
            .map(|&x| {
                let v = (x.unsigned_abs() - 1) as Var;
                Lit::new(v, x > 0)
            })
            .collect()
    }

    fn solver_with(num_vars: u32, clauses: &[&[i32]]) -> Solver {
        let mut s = Solver::new();
        for _ in 0..num_vars {
            s.new_var();
        }
        for c in clauses {
            s.add_clause(&lits(c));
        }
        s
    }

    fn check_model(model: &[bool], clauses: &[&[i32]]) {
        for c in clauses {
            assert!(
                c.iter().any(|&x| {
                    let v = (x.unsigned_abs() - 1) as usize;
                    model[v] == (x > 0)
                }),
                "clause {c:?} unsatisfied by {model:?}"
            );
        }
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let clauses: &[&[i32]] = &[&[1, 2], &[-1, 2], &[1, -2]];
        let mut s = solver_with(2, clauses);
        match s.solve(&Budget::unlimited()) {
            SatResult::Sat(m) => check_model(&m, clauses),
            other => panic!("expected SAT, got {other:?}"),
        }
        let mut s = solver_with(2, &[&[1], &[-1]]);
        assert_eq!(s.solve(&Budget::unlimited()), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        s.new_var();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(&Budget::unlimited()), SatResult::Unsat);
    }

    #[test]
    fn php_unsat_and_graph_sat() {
        // Pigeonhole PHP(4 pigeons, 3 holes): classic small UNSAT with a
        // real resolution proof, exercising learning and restarts.
        let var = |p: usize, h: usize| (p * 3 + h + 1) as i32;
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        for p in 0..4 {
            clauses.push((0..3).map(|h| var(p, h)).collect());
        }
        for h in 0..3 {
            for p1 in 0..4 {
                for p2 in p1 + 1..4 {
                    clauses.push(vec![-var(p1, h), -var(p2, h)]);
                }
            }
        }
        let refs: Vec<&[i32]> = clauses.iter().map(Vec::as_slice).collect();
        let mut s = solver_with(12, &refs);
        assert_eq!(s.solve(&Budget::unlimited()), SatResult::Unsat);

        // 3-coloring of a 5-cycle (SAT; chromatic number 3).
        let cvar = |n: usize, c: usize| (n * 3 + c + 1) as i32;
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        for n in 0..5 {
            clauses.push((0..3).map(|c| cvar(n, c)).collect());
            for c1 in 0..3 {
                for c2 in c1 + 1..3 {
                    clauses.push(vec![-cvar(n, c1), -cvar(n, c2)]);
                }
            }
        }
        for n in 0..5 {
            let m = (n + 1) % 5;
            for c in 0..3 {
                clauses.push(vec![-cvar(n, c), -cvar(m, c)]);
            }
        }
        let refs: Vec<&[i32]> = clauses.iter().map(Vec::as_slice).collect();
        let mut s = solver_with(15, &refs);
        match s.solve(&Budget::unlimited()) {
            SatResult::Sat(m) => {
                for c in &refs {
                    check_model(&m, &[c]);
                }
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        // Deterministic xorshift so the test is reproducible.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rng = move |n: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % n
        };
        for round in 0..200 {
            let nv = 3 + (rng(8) as u32); // 3..=10 vars
            let nc = 2 + rng(4 * u64::from(nv)) as usize;
            let mut clauses: Vec<Vec<i32>> = Vec::new();
            for _ in 0..nc {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = 1 + rng(u64::from(nv)) as i32;
                    c.push(if rng(2) == 0 { v } else { -v });
                }
                clauses.push(c);
            }
            let refs: Vec<&[i32]> = clauses.iter().map(Vec::as_slice).collect();
            let brute_sat = (0u32..1 << nv).any(|bits| {
                refs.iter().all(|c| {
                    c.iter().any(|&x| {
                        let v = x.unsigned_abs() - 1;
                        ((bits >> v) & 1 == 1) == (x > 0)
                    })
                })
            });
            let mut s = solver_with(nv, &refs);
            match s.solve(&Budget::unlimited()) {
                SatResult::Sat(m) => {
                    assert!(brute_sat, "round {round}: solver SAT, brute UNSAT");
                    check_model(&m, &refs);
                }
                SatResult::Unsat => {
                    assert!(!brute_sat, "round {round}: solver UNSAT, brute SAT")
                }
                SatResult::Unknown(r) => panic!("unlimited budget tripped: {r:?}"),
            }
        }
    }

    #[test]
    fn luby_prefix() {
        let seq: Vec<u64> = (1..=15).map(Solver::luby).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn cancelled_budget_returns_unknown() {
        use ltt_core::CancelToken;
        let token = CancelToken::new();
        token.cancel();
        let clauses: &[&[i32]] = &[&[1, 2], &[-1, 2]];
        let mut s = solver_with(2, clauses);
        // A pre-cancelled budget must abort without claiming a verdict.
        assert_eq!(
            s.solve(&Budget::unlimited().with_cancel(token)),
            SatResult::Unknown(TripReason::Cancelled)
        );
    }
}
