//! Engine dispatch: routes checks to narrowing, SAT, or the hybrid
//! fallback according to [`VerifyConfig::engine`].
//!
//! The hybrid contract: run the narrowing pipeline first; when (and only
//! when) it returns [`Completeness::BudgetExhausted`], re-decide the
//! check with the CNF/CDCL backend under the same per-check budget. A
//! SAT decision upgrades the verdict to an exact one; a SAT budget trip
//! leaves the narrowing report untouched. Delay searches tighten the
//! `[lower, upper]` interval the same way — every SAT probe either
//! raises the certified lower bound (a model is a concrete witness
//! vector) or lowers the proven upper bound (UNSAT at δ rules out every
//! δ′ ≥ δ by monotonicity of `settle ≥`), so the hybrid interval is
//! always at least as tight as the narrowing one.

use crate::cdcl::{CdclStats, SatResult};
use crate::encode::{encode_check, EncodeError, Encoded};
use ltt_core::{
    BatchCheck, BatchSummary, Budget, CheckSession, Completeness, DelaySearch, Engine, Stage,
    StageVerdict, TripReason, Verdict, VerifyReport,
};
use ltt_netlist::{Circuit, NetId};
use ltt_sta::{vector_delay, vector_violates};
use std::time::Instant;

/// Outcome of one SAT decision of a check `(output, δ)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatVerdict {
    /// A certified violating vector (its floating-mode delay is ≥ δ).
    Violated(Vec<bool>),
    /// No input vector violates the check.
    Safe,
    /// The budget tripped (or the grid blew past its cap) first.
    Unknown(TripReason),
}

/// A SAT decision plus the solver effort it took.
#[derive(Clone, Debug)]
pub struct SatCheck {
    /// The decision.
    pub verdict: SatVerdict,
    /// CDCL counters (zero when the grid analysis decided outright).
    pub stats: CdclStats,
}

/// Decides the check `(output, δ)` with the CNF/CDCL backend under
/// `budget`. Witness vectors are certified against the exact simulator
/// before being reported; a failed certificate (an encoder bug, never
/// observed) degrades to `Unknown` rather than report a wrong verdict.
pub fn sat_decide(circuit: &Circuit, output: NetId, delta: i64, budget: &Budget) -> SatCheck {
    match encode_check(circuit, output, delta, budget) {
        Err(EncodeError::Budget(reason)) => SatCheck {
            verdict: SatVerdict::Unknown(reason),
            stats: CdclStats::default(),
        },
        Err(EncodeError::GridTooLarge { .. }) => SatCheck {
            // The exact grid is a resource like any other; map its cap to
            // the event-cap trip so callers see a uniform budget story.
            verdict: SatVerdict::Unknown(TripReason::Events),
            stats: CdclStats::default(),
        },
        Ok(Encoded::AlwaysViolated) => SatCheck {
            verdict: SatVerdict::Violated(vec![false; circuit.inputs().len()]),
            stats: CdclStats::default(),
        },
        Ok(Encoded::NeverViolated) => SatCheck {
            verdict: SatVerdict::Safe,
            stats: CdclStats::default(),
        },
        Ok(Encoded::Cnf(mut cnf)) => {
            let result = cnf.solver.solve(budget);
            let stats = cnf.solver.stats;
            let verdict = match result {
                SatResult::Sat(model) => {
                    let witness = cnf.witness(&model);
                    if vector_violates(circuit, &witness, output, delta) {
                        SatVerdict::Violated(witness)
                    } else {
                        debug_assert!(false, "SAT witness failed certification");
                        SatVerdict::Unknown(TripReason::Events)
                    }
                }
                SatResult::Unsat => SatVerdict::Safe,
                SatResult::Unknown(reason) => SatVerdict::Unknown(reason),
            };
            SatCheck { verdict, stats }
        }
    }
}

/// Builds a [`VerifyReport`] from a SAT decision (stage = [`Stage::Sat`]).
fn sat_report(output: NetId, delta: i64, check: SatCheck, started: Instant) -> VerifyReport {
    let (verdict, completeness) = match check.verdict {
        SatVerdict::Violated(vector) => (Verdict::Violation { vector }, Completeness::Exact),
        SatVerdict::Safe => (
            Verdict::NoViolation { stage: Stage::Sat },
            Completeness::Exact,
        ),
        SatVerdict::Unknown(reason) => (
            Verdict::Abandoned,
            Completeness::BudgetExhausted {
                stage: Stage::Sat,
                reason,
            },
        ),
    };
    // Propagations are the SAT analogue of narrowing events; surfacing
    // them keeps `effort`-style accounting meaningful across engines.
    let solver = ltt_core::SolverStats {
        events: check.stats.propagations,
        ..Default::default()
    };
    VerifyReport {
        output,
        delta,
        verdict,
        completeness,
        before_gitd: StageVerdict::Possible,
        after_gitd: None,
        after_stems: None,
        backtracks: check.stats.conflicts,
        solver,
        stems: Default::default(),
        case: Default::default(),
        stage_times: Default::default(),
        effort: Default::default(),
        elapsed: started.elapsed(),
    }
}

/// Runs the check through the engine selected by the session's config
/// (with `extra` merged into the per-check budget, serve-style).
pub fn verify_budgeted(
    session: &CheckSession<'_>,
    output: NetId,
    delta: i64,
    extra: &Budget,
) -> VerifyReport {
    verify_with_engine(session, session.config().engine, output, delta, extra)
}

/// [`verify_budgeted`] with the engine chosen per call instead of by the
/// session config — the serve daemon shares one registered session across
/// requests that may each ask for a different `opts.engine`.
pub fn verify_with_engine(
    session: &CheckSession<'_>,
    engine: Engine,
    output: NetId,
    delta: i64,
    extra: &Budget,
) -> VerifyReport {
    match engine {
        Engine::Narrow => session.verify_budgeted(output, delta, extra),
        Engine::Sat => {
            let started = Instant::now();
            let budget = session.config().budget.merged(extra);
            let check = sat_decide(session.circuit(), output, delta, &budget);
            sat_report(output, delta, check, started)
        }
        Engine::Hybrid => {
            let report = session.verify_budgeted(output, delta, extra);
            if report.completeness.is_exact() {
                return report;
            }
            // Narrowing exhausted its budget: one SAT attempt under the
            // same per-check limits. A decision replaces the abandoned
            // report; another trip keeps it.
            let started = Instant::now();
            let budget = session.config().budget.merged(extra);
            let check = sat_decide(session.circuit(), output, delta, &budget);
            match check.verdict {
                SatVerdict::Unknown(_) => report,
                decided => {
                    let mut upgraded = sat_report(
                        output,
                        delta,
                        SatCheck {
                            verdict: decided,
                            stats: check.stats,
                        },
                        started,
                    );
                    // Keep the narrowing effort visible in the upgrade.
                    upgraded.backtracks += report.backtracks;
                    upgraded.solver = upgraded.solver.saturating_add(&report.solver);
                    upgraded.elapsed = report.elapsed.saturating_add(upgraded.elapsed);
                    upgraded
                }
            }
        }
    }
}

/// [`verify_budgeted`] with no extra budget.
pub fn verify(session: &CheckSession<'_>, output: NetId, delta: i64) -> VerifyReport {
    verify_budgeted(session, output, delta, &Budget::unlimited())
}

/// Exact-delay search through the configured engine.
///
/// * `Narrow` delegates to the session's bisection.
/// * `Sat` bisects with SAT probes only.
/// * `Hybrid` runs the narrowing search first and, when it comes back
///   inexact, keeps bisecting the remaining `[lower, upper]` gap with SAT
///   probes (each under the per-check budget) — tightening the interval
///   instead of giving up.
pub fn exact_delay_budgeted(
    session: &CheckSession<'_>,
    output: NetId,
    extra: &Budget,
) -> DelaySearch {
    exact_delay_with_engine(session, session.config().engine, output, extra)
}

/// [`exact_delay_budgeted`] with the engine chosen per call (see
/// [`verify_with_engine`]).
pub fn exact_delay_with_engine(
    session: &CheckSession<'_>,
    engine: Engine,
    output: NetId,
    extra: &Budget,
) -> DelaySearch {
    match engine {
        Engine::Narrow => session.exact_delay_budgeted(output, extra),
        Engine::Sat => {
            let budget = session.config().budget.merged(extra);
            let top = session.circuit().topological_delay();
            sat_bisect(
                session.circuit(),
                output,
                &budget,
                DelaySearch {
                    delay: 0,
                    vector: None,
                    proven_exact: false,
                    upper_bound: top,
                    backtracks: 0,
                    probes: Vec::new(),
                },
            )
        }
        Engine::Hybrid => {
            let search = session.exact_delay_budgeted(output, extra);
            if search.proven_exact {
                return search;
            }
            let budget = session.config().budget.merged(extra);
            sat_bisect(session.circuit(), output, &budget, search)
        }
    }
}

/// [`exact_delay_budgeted`] with no extra budget.
pub fn exact_delay(session: &CheckSession<'_>, output: NetId) -> DelaySearch {
    exact_delay_budgeted(session, output, &Budget::unlimited())
}

/// Runs a batch of checks through the configured engine, producing the
/// same [`BatchCheck`] shape as the core batch runner so front-ends
/// (CLI, serve) can swap engines without changing their reporting paths.
/// Checks run serially — the SAT backend is the cross-check/fallback
/// path, not the throughput path.
pub fn run_checks(
    session: &CheckSession<'_>,
    engine: Engine,
    checks: &[(NetId, i64)],
    extra: &Budget,
    fail_fast: bool,
) -> BatchCheck {
    let started = Instant::now();
    let mut reports = Vec::with_capacity(checks.len());
    let mut skipped = 0u64;
    for &(output, delta) in checks {
        let r = verify_with_engine(session, engine, output, delta, extra);
        let violated = matches!(r.verdict, Verdict::Violation { .. });
        reports.push(r);
        if violated && fail_fast {
            skipped = (checks.len() - reports.len()) as u64;
            break;
        }
    }
    let mut summary = BatchSummary::aggregate(&reports);
    summary.skipped = skipped;
    BatchCheck {
        reports,
        errors: Vec::new(),
        summary,
        wall: started.elapsed(),
    }
}

/// Bisects the violation frontier with SAT probes, starting from (and
/// never loosening) the interval carried by `search`: a model at δ is a
/// certified witness raising `delay`, an UNSAT at δ proves every δ′ ≥ δ
/// safe, lowering `upper_bound` to δ − 1. A probe trip stops the search
/// with the interval proven so far.
fn sat_bisect(
    circuit: &Circuit,
    output: NetId,
    budget: &Budget,
    mut search: DelaySearch,
) -> DelaySearch {
    // Invariant: a violation at `lo` is demonstrated (or lo = 0, trivially
    // demonstrated by any vector settling at ≥ 0) and hi = upper_bound + 1
    // is proven violation-free.
    let mut lo = search.delay.max(0);
    let mut hi = search.upper_bound + 1;
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        let started = Instant::now();
        let check = sat_decide(circuit, output, mid, budget);
        search.backtracks += check.stats.conflicts;
        match check.verdict.clone() {
            SatVerdict::Violated(vector) => {
                // The witness's true delay can beat the probe point;
                // credit the whole jump.
                lo = lo.max(vector_delay(circuit, &vector, output)).max(mid);
                search.vector = Some(vector);
            }
            SatVerdict::Safe => hi = mid,
            SatVerdict::Unknown(_) => {
                search.probes.push(sat_report(output, mid, check, started));
                break;
            }
        }
        search.probes.push(sat_report(output, mid, check, started));
    }
    search.delay = lo;
    search.upper_bound = hi - 1;
    search.proven_exact = lo + 1 == hi;
    search
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltt_core::VerifyConfig;
    use ltt_netlist::generators::figure1;

    fn session_with(circuit: &Circuit, engine: Engine) -> CheckSession<'_> {
        let config = VerifyConfig {
            engine,
            ..Default::default()
        };
        CheckSession::new(circuit, config)
    }

    #[test]
    fn sat_engine_matches_narrowing_on_figure1() {
        let c = figure1(10);
        let s = c.outputs()[0];
        let sat = session_with(&c, Engine::Sat);
        let narrow = session_with(&c, Engine::Narrow);
        for delta in [50, 60, 61, 70, 71] {
            let rs = verify(&sat, s, delta);
            let rn = verify(&narrow, s, delta);
            assert_eq!(
                rs.verdict.is_violation(),
                rn.verdict.is_violation(),
                "δ={delta}"
            );
            assert_eq!(
                rs.verdict.is_no_violation(),
                rn.verdict.is_no_violation(),
                "δ={delta}"
            );
        }
    }

    #[test]
    fn sat_exact_delay_is_60_on_figure1() {
        let c = figure1(10);
        let s = c.outputs()[0];
        let session = session_with(&c, Engine::Sat);
        let search = exact_delay(&session, s);
        assert!(search.proven_exact);
        assert_eq!(search.delay, 60);
        assert_eq!(search.upper_bound, 60);
        let w = search.vector.expect("witness");
        assert_eq!(vector_delay(&c, &w, s), 60);
    }

    #[test]
    fn hybrid_without_pressure_equals_narrowing() {
        let c = figure1(10);
        let s = c.outputs()[0];
        let hybrid = session_with(&c, Engine::Hybrid);
        let r = verify(&hybrid, s, 61);
        assert!(r.verdict.is_no_violation());
        assert!(r.completeness.is_exact());
    }

    #[test]
    fn hybrid_decides_when_narrowing_budget_trips() {
        use ltt_netlist::generators::serial_false_path_gadgets;
        // A backtrack budget of 1 exhausts narrowing case analysis almost
        // immediately on the gadget chain; the SAT fallback must still
        // decide the check exactly.
        let c = serial_false_path_gadgets(6, 10);
        let s = c.outputs()[0];
        // Reference: full-budget narrowing bisection (proven exact), which
        // the SAT bisection must independently reproduce.
        let reference = CheckSession::new(&c, VerifyConfig::default()).exact_delay(s);
        assert!(reference.proven_exact);
        let exact = reference.delay;
        let sat_session = session_with(&c, Engine::Sat);
        let sat_search = exact_delay(&sat_session, s);
        assert!(sat_search.proven_exact);
        assert_eq!(sat_search.delay, exact, "SAT vs narrowing exact delay");
        // Strip the §4/§5 stages so the check truly rides on case
        // analysis, then cap it at one backtrack.
        let config = VerifyConfig {
            engine: Engine::Hybrid,
            max_backtracks: 1,
            dominators: false,
            stem_correlation: false,
            learning: ltt_core::LearningMode::Off,
            ..Default::default()
        };
        let session = CheckSession::new(&c, config.clone());
        let r = verify(&session, s, exact + 1);
        assert!(r.verdict.is_no_violation(), "{:?}", r.verdict);
        assert!(r.completeness.is_exact());

        // Narrowing alone abandons the same check.
        let narrow = CheckSession::new(
            &c,
            VerifyConfig {
                engine: Engine::Narrow,
                ..config
            },
        );
        let rn = narrow.verify(s, exact + 1);
        assert!(!rn.completeness.is_exact(), "{:?}", rn.completeness);
    }
}
