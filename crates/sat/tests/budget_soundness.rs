//! Budget-trip soundness of the SAT backend, proven by fault injection
//! (run with `--features failpoints`): a stall armed on `sat::propagate`
//! forces every CDCL run to exhaust its wall budget mid-search, and the
//! tripped solve must surface as `Unknown`/`BudgetExhausted` — never as a
//! decided (and therefore wrong) verdict — while delay searches keep a
//! still-proven `[lower, upper]` interval around the true delay.
//!
//! The failpoint registry is process-global, so every test serializes
//! behind `FAULT_LOCK` and disarms on the way out.

#![cfg(feature = "failpoints")]

use ltt_core::failpoint::{clear_all, set, FailAction};
use ltt_core::{
    Budget, CheckSession, Completeness, Engine, Stage, TripReason, Verdict, VerifyConfig,
};
use ltt_netlist::generators::figure1;
use ltt_netlist::Circuit;
use ltt_sat::{sat_decide, SatVerdict};
use std::sync::Mutex;
use std::time::Duration;

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn session(circuit: &Circuit, engine: Engine) -> CheckSession<'_> {
    CheckSession::new(
        circuit,
        VerifyConfig {
            engine,
            ..Default::default()
        },
    )
}

/// Arms the CDCL propagation stall, runs `body`, and always disarms —
/// even when an assertion inside `body` panics, so one failure cannot
/// poison the registry for the remaining tests.
fn with_stalled_propagation<R>(stall: Duration, body: impl FnOnce() -> R) -> R {
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            clear_all();
        }
    }
    let _guard = Disarm;
    set("sat::propagate", Some("cdcl"), FailAction::Stall(stall));
    body()
}

/// A wall budget short enough that the very first post-stall poll trips
/// it: the stall (100ms) dwarfs the window (10ms), so a stalled solve can
/// never run to completion no matter how the scheduler slices it.
fn tripping_budget() -> Budget {
    Budget::unlimited().with_wall(Duration::from_millis(10))
}

#[test]
fn tripped_solve_reports_unknown_never_a_wrong_verdict() {
    let _lock = FAULT_LOCK.lock().unwrap();
    let circuit = figure1(10);
    let output = circuit.outputs()[0];

    // Ground truth first, with nothing armed: the exact delay and the two
    // δ values whose true verdicts bracket it.
    let exact = {
        let narrow = session(&circuit, Engine::Narrow);
        let search = narrow.exact_delay(output);
        assert!(search.proven_exact, "figure1 must be decidable unbudgeted");
        search.delay
    };
    assert!(exact > 0, "figure1 has a positive floating-mode delay");

    with_stalled_propagation(Duration::from_millis(100), || {
        // δ = exact: the true verdict is Violated. A tripped solve must
        // not claim Safe (unsound) — and with the stall it cannot finish,
        // so anything but Unknown(Deadline) is a soundness bug.
        let check = sat_decide(&circuit, output, exact, &tripping_budget());
        assert_eq!(
            check.verdict,
            SatVerdict::Unknown(TripReason::Deadline),
            "stalled solve at δ = exact must trip, not decide"
        );

        // δ = exact + 1: the true verdict is Safe. A tripped solve must
        // not claim Violated (a fabricated witness).
        let check = sat_decide(&circuit, output, exact + 1, &tripping_budget());
        assert_eq!(
            check.verdict,
            SatVerdict::Unknown(TripReason::Deadline),
            "stalled solve at δ = exact + 1 must trip, not decide"
        );
    });
}

#[test]
fn tripped_verify_surfaces_budget_exhausted_at_the_sat_stage() {
    let _lock = FAULT_LOCK.lock().unwrap();
    let circuit = figure1(10);
    let output = circuit.outputs()[0];
    let exact = {
        let narrow = session(&circuit, Engine::Narrow);
        narrow.exact_delay(output).delay
    };

    with_stalled_propagation(Duration::from_millis(100), || {
        let sat = session(&circuit, Engine::Sat);
        let report = ltt_sat::verify_budgeted(&sat, output, exact, &tripping_budget());
        assert_eq!(report.verdict, Verdict::Abandoned);
        assert_eq!(
            report.completeness,
            Completeness::BudgetExhausted {
                stage: Stage::Sat,
                reason: TripReason::Deadline,
            },
            "the trip must be attributed to the SAT stage"
        );
    });
}

#[test]
fn tripped_delay_search_keeps_a_proven_interval() {
    let _lock = FAULT_LOCK.lock().unwrap();
    let circuit = figure1(10);
    let output = circuit.outputs()[0];
    let truth = {
        let narrow = session(&circuit, Engine::Narrow);
        let search = narrow.exact_delay(output);
        assert!(search.proven_exact);
        search.delay
    };

    with_stalled_propagation(Duration::from_millis(100), || {
        let sat = session(&circuit, Engine::Sat);
        let search =
            ltt_sat::exact_delay_with_engine(&sat, Engine::Sat, output, &tripping_budget());
        // Every probe tripped, so the search cannot claim exactness...
        assert!(
            !search.proven_exact,
            "stalled bisection claimed an exact delay"
        );
        // ...but the interval it does report must still be *proven*:
        // `delay` only ever rises on a certified witness and
        // `upper_bound` only ever falls on an UNSAT proof, so even a
        // fully-starved search brackets the truth.
        assert!(
            search.delay <= truth && truth <= search.upper_bound,
            "tripped interval [{}, {}] lost the true delay {truth}",
            search.delay,
            search.upper_bound
        );
        if let Some(vector) = &search.vector {
            assert!(
                ltt_sta::vector_violates(&circuit, vector, output, search.delay),
                "reported lower-bound witness fails certification"
            );
        }
    });
}

#[test]
fn disarmed_failpoint_restores_exact_decisions() {
    // Guards against registry leakage between tests (and documents that
    // the stall — not some latent budget bug — caused the trips above).
    let _lock = FAULT_LOCK.lock().unwrap();
    clear_all();
    let circuit = figure1(10);
    let output = circuit.outputs()[0];
    let sat = session(&circuit, Engine::Sat);
    let search = ltt_sat::exact_delay(&sat, output);
    assert!(
        search.proven_exact,
        "unarmed SAT search must decide figure1"
    );
}
