//! `ltt` — the command-line timing verifier.
//!
//! ```text
//! ltt info    <netlist>                          circuit statistics
//! ltt check   <netlist> --delta N [options]      one timing check (Fig. 4 pipeline)
//! ltt delay   <netlist> [options]                exact floating-mode delay per output
//! ltt report  <netlist> --deadline N [options]   topological slack report
//! ltt convert <netlist> --to bench|verilog       netlist format conversion
//! ltt serve   [--addr A] [--jobs N] [--queue-cap Q]   persistent daemon
//! ltt client  <requests.json> [--addr A]         send requests to a daemon
//! ```
//!
//! Netlists are ISCAS `.bench` or structural Verilog (`.v`), detected by
//! extension (override with `--format`). Common options:
//!
//! ```text
//! --delay D          per-gate delay for formats without delays (default 10)
//! --sdf FILE         back-annotate delays from an SDF file
//! --output NAME      restrict to one primary output (default: all/critical)
//! --assume NET=0|1   pin a net's settling value (set_case_analysis)
//! --mode floating|transition
//! --no-dominators / --no-stems / --no-search / --no-learning
//! --max-backtracks N (default 100000)
//! --deadline-ms T    wall-clock budget for the whole run (degrade, exit 2)
//! --fail-fast        stop the batch at the first certified violation
//! ```
//!
//! Exit codes: `0` no violation, `1` violation found, `2` incomplete
//! (budget exhausted / search abandoned / a check failed), `3` usage or
//! input error.

use cli::run;
use std::process::ExitCode;

mod cli;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(status) => ExitCode::from(status.exit_code()),
        Err(error) => {
            eprintln!("error: {error}");
            ExitCode::from(error.exit_code())
        }
    }
}
