//! `ltt` — the command-line timing verifier.
//!
//! ```text
//! ltt info    <netlist>                          circuit statistics
//! ltt check   <netlist> --delta N [options]      one timing check (Fig. 4 pipeline)
//! ltt delay   <netlist> [options]                exact floating-mode delay per output
//! ltt report  <netlist> --deadline N [options]   topological slack report
//! ltt convert <netlist> --to bench|verilog       netlist format conversion
//! ```
//!
//! Netlists are ISCAS `.bench` or structural Verilog (`.v`), detected by
//! extension (override with `--format`). Common options:
//!
//! ```text
//! --delay D          per-gate delay for formats without delays (default 10)
//! --sdf FILE         back-annotate delays from an SDF file
//! --output NAME      restrict to one primary output (default: all/critical)
//! --assume NET=0|1   pin a net's settling value (set_case_analysis)
//! --mode floating|transition
//! --no-dominators / --no-stems / --no-search / --no-learning
//! --max-backtracks N (default 100000)
//! ```

use cli::run;
use std::process::ExitCode;

mod cli;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
