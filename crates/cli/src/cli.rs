//! Argument parsing and subcommand implementations for the `ltt` binary.

use ltt_core::{
    explain, BatchRunner, Budget, CheckError, CheckSession, Completeness, ConeMode, DelayMode,
    DelaySearch, Engine, Error, LearningMode, Obs, Recorder, Stage, Verdict, VerifyConfig,
};
use ltt_netlist::bench_format::{parse_bench, write_bench};
use ltt_netlist::sdf::apply_sdf;
use ltt_netlist::verilog::{parse_verilog, write_verilog};
use ltt_netlist::{Circuit, CircuitEdit, DelayInterval, NetId};
use ltt_sta::{simulate, transition_counts, write_vcd, SlackReport, WaveformTrace};
use ltt_waveform::Level;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What a run that parsed and executed concluded — the non-error half of
/// the exit-code contract (`0` clean, `1` violation, `2` incomplete;
/// [`Error::exit_code`] covers `2`/`3` for runs that failed outright).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// Every requested check completed and none violates.
    Clean,
    /// At least one certified timing violation.
    Violation,
    /// No violation found, but some result is partial: a budget tripped,
    /// a search was abandoned, or a fault-isolated slot failed.
    Incomplete,
}

impl RunStatus {
    /// The process exit code for this status.
    pub fn exit_code(self) -> u8 {
        match self {
            RunStatus::Clean => 0,
            RunStatus::Violation => 1,
            RunStatus::Incomplete => 2,
        }
    }
}

/// Parsed common options.
struct Options {
    file: String,
    format: Option<String>,
    delay: u32,
    sdf: Option<String>,
    output: Option<String>,
    delta: Option<i64>,
    deadline: Option<i64>,
    deadline_ms: Option<u64>,
    fail_fast: bool,
    to: Option<String>,
    v1: Option<String>,
    v2: Option<String>,
    vcd: Option<String>,
    assumptions: Vec<(String, Level)>,
    mode: DelayMode,
    dominators: bool,
    stems: bool,
    search: bool,
    learning: bool,
    max_backtracks: u64,
    jobs: usize,
    trace: Option<String>,
    cone: ConeMode,
    engine: Engine,
    set_delay: Vec<String>,
    rewire: Vec<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            file: String::new(),
            format: None,
            delay: 10,
            sdf: None,
            output: None,
            delta: None,
            deadline: None,
            deadline_ms: None,
            fail_fast: false,
            to: None,
            v1: None,
            v2: None,
            vcd: None,
            assumptions: Vec::new(),
            mode: DelayMode::Floating,
            dominators: true,
            stems: true,
            search: true,
            learning: true,
            max_backtracks: 100_000,
            jobs: 0,
            trace: None,
            cone: ConeMode::Auto,
            engine: Engine::Narrow,
            set_delay: Vec::new(),
            rewire: Vec::new(),
        }
    }
}

const USAGE: &str =
    "usage: ltt <info|check|delay|patch|report|convert|serve|router|client> <netlist> [options]
run `ltt help` for the full option list";

/// Entry point used by `main` (and the tests).
pub fn run(args: &[String]) -> Result<RunStatus, Error> {
    let Some(command) = args.first() else {
        return Err(Error::usage(USAGE));
    };
    if command == "help" || command == "--help" || command == "-h" {
        println!("{}", long_help());
        return Ok(RunStatus::Clean);
    }
    // `serve`, `router`, and `client` take no netlist positional; they
    // branch before the common option parser.
    match command.as_str() {
        "serve" => return cmd_serve(&args[1..]),
        "router" => return cmd_router(&args[1..]),
        "client" => return cmd_client(&args[1..]),
        _ => {}
    }
    let opts = parse_options(&args[1..])?;
    let circuit = load_circuit(&opts)?;
    match command.as_str() {
        "info" => cmd_info(&circuit),
        "check" => cmd_check(&circuit, &opts),
        "delay" => cmd_delay(&circuit, &opts),
        "patch" => cmd_patch(&circuit, &opts),
        "report" => cmd_report(&circuit, &opts),
        "convert" => cmd_convert(&circuit, &opts),
        "simulate" => cmd_simulate(&circuit, &opts),
        "explain" => cmd_explain(&circuit, &opts),
        other => Err(Error::usage(format!("unknown command `{other}`\n{USAGE}"))),
    }
}

fn long_help() -> String {
    "ltt — false-path-aware gate-level timing verification
(waveform narrowing with last-transition-time constraint propagation,
after Kassab–Cerny–Aourid–Krodel, DATE 1998)

COMMANDS
  info    <netlist>                 circuit statistics
  check   <netlist> --delta N      can any output transition at/after N?
  delay   <netlist>                exact floating-mode delay per output
  patch   <netlist> --delta N --set-delay G=D | --rewire G=a,b,..
                                   apply ECO edits and re-verify
                                   incrementally (rebased session, clean
                                   cones transplanted), reporting the
                                   incremental-vs-cold wall-clock ratio
  report  <netlist> --deadline N   topological slack report
  convert <netlist> --to FMT       rewrite as bench|verilog
  simulate <netlist> --v1 BITS --v2 BITS [--vcd FILE]
                                   exact two-vector waveform simulation
  explain <netlist> --delta N      where could the violation live?
                                   (carriers, dominators, stems)
  serve   [--addr A] [--jobs N] [--queue-cap Q] [--registry-cap R]
                                   run the persistent verification daemon
                                   (newline-delimited JSON over TCP;
                                   default addr 127.0.0.1:7171, :0 picks
                                   an ephemeral port and prints it)
  router  --backend A [--backend B ...] | --spawn N
                                   run the fault-tolerant fleet front
                                   tier: consistent-hash placement over
                                   the backends, health probes, circuit
                                   breakers, backoff retry + failover
                                   (same wire protocol as `serve`)
  client  <requests.json> [--addr A] [--timeout-ms T]
                                   send request lines to a daemon and
                                   print the responses (`-` reads stdin;
                                   a stalled daemon past T yields a
                                   structured `timeout` error, exit 2)

OPTIONS
  --format bench|verilog    input format (default: by file extension)
  --delay D                 per-gate delay when the format has none (10)
  --sdf FILE                back-annotate delays from an SDF file
  --output NAME             restrict to one primary output
  --assume NET=0|1          pin a net's settling value (repeatable)
  --mode floating|transition
  --cone auto|off|sliced|masked
                            cone-scoped checking (default auto: slice
                            each check to the output's fanin cone when
                            it is a strict subset of the circuit;
                            `sliced`/`masked` force the two cone
                            engines, which answer bit-identically;
                            `off` is the whole-circuit legacy pipeline)
  --no-dominators --no-stems --no-search --no-learning
  --engine narrow|sat|hybrid
                            verification backend for check/delay
                            (default narrow: the waveform-narrowing
                            pipeline; `sat` re-decides each check with
                            an independent CNF/CDCL oracle; `hybrid`
                            runs narrowing first and falls back to SAT
                            only when the budget trips, tightening the
                            reported delay interval instead of giving
                            up; `sat`/`hybrid` do not support --assume)
  --max-backtracks N        case-analysis budget (100000)
  --jobs N                  worker threads for check/delay batches
                            (0 = one per hardware thread, the default;
                            results are identical for every N)
  --deadline-ms T           wall-clock budget for the whole check/delay
                            run; past it, in-flight checks degrade to
                            sound partial results (exit code 2)
  --fail-fast               cancel remaining checks after the first
                            certified violation (trades the deterministic
                            report set for latency; the exit code is
                            unaffected)
  --trace FILE              write per-stage spans of a check/delay run as
                            Chrome-trace JSON (load in chrome://tracing);
                            verdicts and counters are identical with or
                            without tracing

PATCH OPTIONS
  --set-delay GATE=D        re-annotate a gate's delay (GATE is its
                            output net; D or LO:HI interval; repeatable)
  --rewire GATE=a,b,..      replace a gate's input nets (repeatable)

ROUTER OPTIONS
  --addr A                  bind address (default 127.0.0.1:7070, :0 ephemeral)
  --backend A               a backend daemon address (repeatable)
  --spawn N                 spawn N in-process backends instead (testing)
  --replicas R              backends each circuit registers on (2)
  --jobs N / --queue-cap Q  forwarding pool size / admission bound
  --retries N               retry rounds over the candidate list (3)
  --backoff-ms B            first-round backoff, doubled per round (10)
  --breaker-threshold K     consecutive failures that open a breaker (3)
  --breaker-cooldown-ms C   open-breaker cooldown before a probe (1000)
  --health-interval-ms H    status-probe period per backend (1000)
  --connect-timeout-ms T    backend connect bound (1000)
  --rpc-timeout-ms T        backend round-trip bound (30000)
  --max-line-bytes L        request/reply line cap (16 MiB)

EXIT CODES
  0  every check completed, no violation
  1  at least one certified violation
  2  incomplete: budget exhausted, search abandoned, or a check failed
  3  usage or input error"
        .to_string()
}

fn parse_options(args: &[String]) -> Result<Options, Error> {
    let mut opts = Options::default();
    let mut it = args.iter().peekable();
    let mut positional = Vec::new();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, Error> {
            it.next()
                .cloned()
                .ok_or_else(|| Error::usage(format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--format" => opts.format = Some(value("--format")?),
            "--delay" => {
                opts.delay = value("--delay")?
                    .parse()
                    .map_err(|_| Error::usage("--delay needs an integer"))?
            }
            "--sdf" => opts.sdf = Some(value("--sdf")?),
            "--output" => opts.output = Some(value("--output")?),
            "--delta" => {
                opts.delta = Some(
                    value("--delta")?
                        .parse()
                        .map_err(|_| Error::usage("--delta needs an integer"))?,
                )
            }
            "--deadline" => {
                opts.deadline = Some(
                    value("--deadline")?
                        .parse()
                        .map_err(|_| Error::usage("--deadline needs an integer"))?,
                )
            }
            "--deadline-ms" => {
                opts.deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse()
                        .map_err(|_| Error::usage("--deadline-ms needs an integer"))?,
                )
            }
            "--fail-fast" => opts.fail_fast = true,
            "--to" => opts.to = Some(value("--to")?),
            "--v1" => opts.v1 = Some(value("--v1")?),
            "--v2" => opts.v2 = Some(value("--v2")?),
            "--vcd" => opts.vcd = Some(value("--vcd")?),
            "--assume" => {
                let spec = value("--assume")?;
                let (net, v) = spec
                    .split_once('=')
                    .ok_or_else(|| Error::usage("--assume expects NET=0 or NET=1"))?;
                let level = match v {
                    "0" => Level::Zero,
                    "1" => Level::One,
                    _ => return Err(Error::usage("--assume expects NET=0 or NET=1")),
                };
                opts.assumptions.push((net.to_string(), level));
            }
            "--mode" => {
                opts.mode = match value("--mode")?.as_str() {
                    "floating" => DelayMode::Floating,
                    "transition" => DelayMode::Transition,
                    other => return Err(Error::usage(format!("unknown mode `{other}`"))),
                }
            }
            "--cone" => {
                opts.cone = match value("--cone")?.as_str() {
                    "auto" => ConeMode::Auto,
                    "off" => ConeMode::Off,
                    "sliced" => ConeMode::Sliced,
                    "masked" => ConeMode::Masked,
                    other => return Err(Error::usage(format!("unknown cone mode `{other}`"))),
                }
            }
            "--engine" => {
                let v = value("--engine")?;
                opts.engine = Engine::parse(&v)
                    .ok_or_else(|| Error::usage(format!("unknown engine `{v}`")))?;
            }
            "--set-delay" => opts.set_delay.push(value("--set-delay")?),
            "--rewire" => opts.rewire.push(value("--rewire")?),
            "--no-dominators" => opts.dominators = false,
            "--no-stems" => opts.stems = false,
            "--no-search" => opts.search = false,
            "--no-learning" => opts.learning = false,
            "--max-backtracks" => {
                opts.max_backtracks = value("--max-backtracks")?
                    .parse()
                    .map_err(|_| Error::usage("--max-backtracks needs an integer"))?
            }
            "--jobs" => {
                opts.jobs = value("--jobs")?
                    .parse()
                    .map_err(|_| Error::usage("--jobs needs an integer"))?
            }
            "--trace" => opts.trace = Some(value("--trace")?),
            other if other.starts_with("--") => {
                return Err(Error::usage(format!("unknown option `{other}`")))
            }
            _ => positional.push(arg.clone()),
        }
    }
    match positional.as_slice() {
        [file] => opts.file = file.clone(),
        [] => return Err(Error::usage("missing netlist file")),
        more => return Err(Error::usage(format!("unexpected arguments: {more:?}"))),
    }
    Ok(opts)
}

fn load_circuit(opts: &Options) -> Result<Circuit, Error> {
    let text = std::fs::read_to_string(&opts.file).map_err(|e| Error::Io {
        path: opts.file.clone(),
        message: e.to_string(),
    })?;
    let format = match &opts.format {
        Some(f) => f.clone(),
        None if opts.file.ends_with(".v") || opts.file.ends_with(".sv") => "verilog".into(),
        None => "bench".into(),
    };
    let delay = DelayInterval::fixed(opts.delay);
    let circuit = match format.as_str() {
        "bench" => {
            parse_bench(&opts.file, &text, delay).map_err(|e| Error::invalid(e.to_string()))?
        }
        "verilog" => parse_verilog(&text, delay).map_err(|e| Error::invalid(e.to_string()))?,
        other => return Err(Error::usage(format!("unknown format `{other}`"))),
    };
    match &opts.sdf {
        None => Ok(circuit),
        Some(path) => {
            let sdf = std::fs::read_to_string(path).map_err(|e| Error::Io {
                path: path.clone(),
                message: e.to_string(),
            })?;
            apply_sdf(&circuit, &sdf).map_err(|e| Error::invalid(e.to_string()))
        }
    }
}

/// `ltt serve`: run the persistent verification daemon until a `shutdown`
/// request drains it.
fn cmd_serve(args: &[String]) -> Result<RunStatus, Error> {
    let mut config = ltt_serve::ServeConfig {
        addr: "127.0.0.1:7171".to_string(),
        ..Default::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, Error> {
            it.next()
                .cloned()
                .ok_or_else(|| Error::usage(format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--jobs" => {
                config.jobs = value("--jobs")?
                    .parse()
                    .map_err(|_| Error::usage("--jobs needs an integer"))?
            }
            "--queue-cap" => {
                config.queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|_| Error::usage("--queue-cap needs an integer"))?
            }
            "--registry-cap" => {
                config.registry_cap = value("--registry-cap")?
                    .parse()
                    .map_err(|_| Error::usage("--registry-cap needs an integer"))?
            }
            "--max-line-bytes" => {
                config.max_line_bytes = value("--max-line-bytes")?
                    .parse()
                    .map_err(|_| Error::usage("--max-line-bytes needs an integer"))?
            }
            other => return Err(Error::usage(format!("unknown serve option `{other}`"))),
        }
    }
    ltt_serve::serve(&config).map_err(|e| Error::Io {
        path: config.addr.clone(),
        message: e.to_string(),
    })?;
    Ok(RunStatus::Clean)
}

/// `ltt router`: run the sharded-fleet front tier until a `shutdown`
/// request drains it.
fn cmd_router(args: &[String]) -> Result<RunStatus, Error> {
    let mut config = ltt_serve::RouterConfig {
        addr: "127.0.0.1:7070".to_string(),
        ..Default::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, Error> {
            it.next()
                .cloned()
                .ok_or_else(|| Error::usage(format!("{name} needs a value")))
        };
        let arg = arg.as_str();
        // The duration-valued flags share one parse-and-assign path.
        let duration_slot: Option<&mut std::time::Duration> = match arg {
            "--backoff-ms" => Some(&mut config.backoff_base),
            "--backoff-cap-ms" => Some(&mut config.backoff_cap),
            "--breaker-cooldown-ms" => Some(&mut config.breaker_cooldown),
            "--health-interval-ms" => Some(&mut config.health_interval),
            "--connect-timeout-ms" => Some(&mut config.connect_timeout),
            "--rpc-timeout-ms" => Some(&mut config.rpc_timeout),
            _ => None,
        };
        if let Some(slot) = duration_slot {
            let ms: u64 = value(arg)?
                .parse()
                .map_err(|_| Error::usage(format!("{arg} needs an integer (milliseconds)")))?;
            *slot = std::time::Duration::from_millis(ms);
            continue;
        }
        let usize_slot: Option<&mut usize> = match arg {
            "--spawn" => Some(&mut config.spawn),
            "--replicas" => Some(&mut config.replicas),
            "--jobs" => Some(&mut config.jobs),
            "--queue-cap" => Some(&mut config.queue_cap),
            "--backend-jobs" => Some(&mut config.backend_jobs),
            "--backend-queue-cap" => Some(&mut config.backend_queue_cap),
            "--backend-registry-cap" => Some(&mut config.backend_registry_cap),
            "--max-line-bytes" => Some(&mut config.max_line_bytes),
            _ => None,
        };
        if let Some(slot) = usize_slot {
            *slot = value(arg)?
                .parse()
                .map_err(|_| Error::usage(format!("{arg} needs an integer")))?;
            continue;
        }
        match arg {
            "--addr" => config.addr = value("--addr")?,
            "--backend" => config.backends.push(value("--backend")?),
            "--retries" => {
                config.max_retries = value("--retries")?
                    .parse()
                    .map_err(|_| Error::usage("--retries needs an integer"))?
            }
            "--breaker-threshold" => {
                config.breaker_threshold = value("--breaker-threshold")?
                    .parse()
                    .map_err(|_| Error::usage("--breaker-threshold needs an integer"))?
            }
            other => return Err(Error::usage(format!("unknown router option `{other}`"))),
        }
    }
    if config.backends.is_empty() && config.spawn == 0 {
        return Err(Error::usage(
            "router needs at least one --backend (or --spawn N)",
        ));
    }
    let addr = config.addr.clone();
    ltt_serve::route(config).map_err(|e| Error::Io {
        path: addr,
        message: e.to_string(),
    })?;
    Ok(RunStatus::Clean)
}

/// `ltt client`: send each request line of a file (or stdin, `-`) to a
/// daemon, print each response line, and fold the responses into the
/// standard exit-code contract.
fn cmd_client(args: &[String]) -> Result<RunStatus, Error> {
    let mut addr = "127.0.0.1:7171".to_string();
    let mut file: Option<String> = None;
    let mut timeout: Option<std::time::Duration> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                addr = it
                    .next()
                    .cloned()
                    .ok_or_else(|| Error::usage("--addr needs a value"))?
            }
            "--timeout-ms" => {
                let ms: u64 = it
                    .next()
                    .ok_or_else(|| Error::usage("--timeout-ms needs a value"))?
                    .parse()
                    .map_err(|_| Error::usage("--timeout-ms needs an integer"))?;
                if ms == 0 {
                    return Err(Error::usage("--timeout-ms must be positive"));
                }
                timeout = Some(std::time::Duration::from_millis(ms));
            }
            other if other.starts_with("--") => {
                return Err(Error::usage(format!("unknown client option `{other}`")))
            }
            _ => {
                if file.replace(arg.clone()).is_some() {
                    return Err(Error::usage("client takes exactly one request file"));
                }
            }
        }
    }
    let file = file.ok_or_else(|| Error::usage("client needs a request file (`-` for stdin)"))?;
    let text = if file == "-" {
        let mut buffer = String::new();
        std::io::Read::read_to_string(&mut std::io::stdin(), &mut buffer).map_err(|e| {
            Error::Io {
                path: "<stdin>".to_string(),
                message: e.to_string(),
            }
        })?;
        buffer
    } else {
        std::fs::read_to_string(&file).map_err(|e| Error::Io {
            path: file.clone(),
            message: e.to_string(),
        })?
    };
    let connected = match timeout {
        Some(t) => ltt_serve::Client::connect_timeout(&addr, t),
        None => ltt_serve::Client::connect(&addr),
    };
    let mut client = match connected {
        Ok(client) => client,
        Err(e) if timeout.is_some() && ltt_serve::is_timeout(&e) => {
            println!("{}", timeout_response(&addr, "connect").encode());
            return Ok(RunStatus::Incomplete);
        }
        Err(e) => {
            return Err(Error::Io {
                path: addr.clone(),
                message: e.to_string(),
            })
        }
    };
    client.set_read_timeout(timeout).map_err(|e| Error::Io {
        path: addr.clone(),
        message: e.to_string(),
    })?;
    let mut status = RunStatus::Clean;
    for line in text.lines().map(str::trim).filter(|l| !l.is_empty()) {
        let request = ltt_serve::decode(line)
            .map_err(|e| Error::invalid(format!("bad request line: {e}")))?;
        match client.call(&request) {
            Ok(response) => {
                println!("{}", response.encode());
                status = worst_status(status, response_status(&response));
            }
            // A stalled server with `--timeout-ms` armed: report a
            // structured timeout and stop — the connection's framing can
            // no longer be trusted, and exit code 2 (incomplete) is the
            // contract for work that did not finish.
            Err(e) if ltt_serve::is_timeout(&e) => {
                println!("{}", timeout_response(&addr, "reply").encode());
                return Ok(RunStatus::Incomplete);
            }
            Err(e) => {
                return Err(Error::Io {
                    path: addr.clone(),
                    message: e.to_string(),
                })
            }
        }
    }
    Ok(status)
}

/// The client-side structured timeout report, shaped like a server error
/// reply so scripts parse both the same way.
fn timeout_response(addr: &str, what: &str) -> ltt_serve::Json {
    use ltt_serve::Json;
    Json::obj([
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::obj([
                ("code", Json::str("timeout")),
                (
                    "message",
                    Json::str(format!("timed out waiting for {what} from {addr}")),
                ),
            ]),
        ),
    ])
}

/// Folds one server response into the exit-code contract: a reported
/// violation beats an incomplete result beats clean.
fn response_status(response: &ltt_serve::Json) -> RunStatus {
    use ltt_serve::Json;
    if response.get("ok").and_then(Json::as_bool) != Some(true) {
        return RunStatus::Incomplete;
    }
    let violated = response.get("outcome").and_then(Json::as_str) == Some("violation")
        || response
            .get("report")
            .and_then(|r| r.get("verdict"))
            .and_then(Json::as_str)
            == Some("violation");
    if violated {
        return RunStatus::Violation;
    }
    let incomplete = response.get("complete").and_then(Json::as_bool) == Some(false)
        || response
            .get("results")
            .and_then(Json::as_array)
            .is_some_and(|results| {
                results.iter().any(|r| {
                    r.get("exact").and_then(Json::as_bool) == Some(false)
                        || r.get("error").is_some()
                })
            });
    if incomplete {
        RunStatus::Incomplete
    } else {
        RunStatus::Clean
    }
}

/// `Violation` dominates (it is the signal), then `Incomplete`.
fn worst_status(a: RunStatus, b: RunStatus) -> RunStatus {
    use RunStatus::*;
    match (a, b) {
        (Violation, _) | (_, Violation) => Violation,
        (Incomplete, _) | (_, Incomplete) => Incomplete,
        _ => Clean,
    }
}

fn config_from(opts: &Options) -> VerifyConfig {
    VerifyConfig {
        delay_mode: opts.mode,
        cone: opts.cone,
        learning: if opts.learning {
            LearningMode::Stems
        } else {
            LearningMode::Off
        },
        dominators: opts.dominators,
        stem_correlation: opts.stems,
        case_analysis: opts.search,
        max_backtracks: opts.max_backtracks,
        certify_vectors: true,
        budget: Budget::unlimited(),
        engine: opts.engine,
        obs: Obs::disabled(),
    }
}

fn runner_from(opts: &Options) -> BatchRunner {
    let mut runner = BatchRunner::new(opts.jobs).with_fail_fast(opts.fail_fast);
    if let Some(ms) = opts.deadline_ms {
        runner = runner.with_deadline(Duration::from_millis(ms));
    }
    runner
}

fn resolve_outputs(circuit: &Circuit, opts: &Options) -> Result<Vec<NetId>, Error> {
    match &opts.output {
        None => Ok(circuit.outputs().to_vec()),
        Some(name) => {
            let net = circuit
                .net_by_name(name)
                .ok_or_else(|| Error::invalid(format!("no net named `{name}`")))?;
            Ok(vec![net])
        }
    }
}

fn resolve_assumptions(circuit: &Circuit, opts: &Options) -> Result<Vec<(NetId, Level)>, Error> {
    opts.assumptions
        .iter()
        .map(|(name, level)| {
            circuit
                .net_by_name(name)
                .map(|n| (n, *level))
                .ok_or_else(|| Error::invalid(format!("no net named `{name}` (in --assume)")))
        })
        .collect()
}

fn stage_name(stage: Stage) -> &'static str {
    match stage {
        Stage::Narrowing => "narrowing",
        Stage::Dominators => "timing dominators",
        Stage::StemCorrelation => "stem correlation",
        Stage::CaseAnalysis => "case analysis",
        Stage::Sat => "sat",
    }
}

fn cmd_info(circuit: &Circuit) -> Result<RunStatus, Error> {
    println!("name:            {}", circuit.name());
    println!("gates:           {}", circuit.num_gates());
    println!("nets:            {}", circuit.num_nets());
    println!("inputs:          {}", circuit.inputs().len());
    println!("outputs:         {}", circuit.outputs().len());
    println!("depth:           {} levels", circuit.depth());
    println!("topological:     {}", circuit.topological_delay());
    println!("min topological: {}", circuit.min_topological_delay());
    println!("fanout stems:    {}", circuit.num_fanout_stems());
    Ok(RunStatus::Clean)
}

fn cmd_check(circuit: &Circuit, opts: &Options) -> Result<RunStatus, Error> {
    let delta = opts
        .delta
        .ok_or_else(|| Error::usage("check needs --delta N"))?;
    let mut config = config_from(opts);
    let recorder = trace_recorder(opts, &mut config);
    let assumptions = resolve_assumptions(circuit, opts)?;
    let session = CheckSession::new(circuit, config);
    let runner = runner_from(opts);
    let checks: Vec<(NetId, i64)> = resolve_outputs(circuit, opts)?
        .into_iter()
        .map(|o| (o, delta))
        .collect();
    let batch = if opts.engine == Engine::Narrow {
        runner.run_under(&session, &checks, &assumptions)
    } else {
        // The CNF encoder has no notion of pinned nets, and silently
        // ignoring pins would let it report witnesses the assumption
        // set rules out.
        if !assumptions.is_empty() {
            return Err(Error::usage(
                "--assume requires --engine narrow (the CNF encoder does not support pins)",
            ));
        }
        let extra = match opts.deadline_ms {
            Some(ms) => {
                Budget::unlimited().with_deadline(Instant::now() + Duration::from_millis(ms))
            }
            None => Budget::unlimited(),
        };
        ltt_sat::run_checks(&session, opts.engine, &checks, &extra, opts.fail_fast)
    };
    let mut any_violation = false;
    let mut any_open = false;
    for r in &batch.reports {
        let name = circuit.net(r.output).name();
        match &r.verdict {
            Verdict::NoViolation { stage } => println!(
                "{name}: no transition at or after {delta} is possible (proved by {}, {:.2} ms)",
                stage_name(*stage),
                r.elapsed.as_secs_f64() * 1e3
            ),
            Verdict::Violation { vector } => {
                any_violation = true;
                let pretty: Vec<String> = circuit
                    .inputs()
                    .iter()
                    .zip(vector.iter())
                    .map(|(&n, &v)| format!("{}={}", circuit.net(n).name(), u8::from(v)))
                    .collect();
                println!(
                    "{name}: VIOLATED — certified vector after {} backtracks: {}",
                    r.backtracks,
                    pretty.join(" ")
                );
            }
            Verdict::Possible => {
                any_open = true;
                println!("{name}: possible violation (search disabled; rerun without --no-search)");
            }
            Verdict::Abandoned => {
                any_open = true;
                match r.completeness {
                    Completeness::BudgetExhausted { stage, reason } => println!(
                        "{name}: undecided — budget exhausted ({reason}) in {} after {} backtracks",
                        stage_name(stage),
                        r.backtracks
                    ),
                    Completeness::Exact => println!(
                        "{name}: undecided — case analysis abandoned after {} backtracks",
                        r.backtracks
                    ),
                }
            }
        }
    }
    for e in &batch.errors {
        println!("{}: {}", circuit.net(e.output).name(), e.error);
    }
    let s = &batch.summary;
    println!(
        "checked {} output(s) in {:.2} ms with {} job(s): {} safe, {} violated, {} undecided, {} failed, {} skipped",
        s.checks,
        batch.wall.as_secs_f64() * 1e3,
        runner.jobs(),
        s.no_violation,
        s.violations,
        s.undecided,
        s.failed,
        s.skipped
    );
    println!(
        "  effort: {} events, {} backtracks · stage ms: narrowing {:.2}, dominators {:.2}, stems {:.2}, search {:.2}",
        s.solver.events,
        s.backtracks,
        s.stage_wall.narrowing.as_secs_f64() * 1e3,
        s.stage_wall.dominators.as_secs_f64() * 1e3,
        s.stage_wall.stems.as_secs_f64() * 1e3,
        s.stage_wall.case_analysis.as_secs_f64() * 1e3
    );
    write_trace(opts, recorder.as_deref())?;
    if any_violation {
        println!("result: VIOLATED");
        Ok(RunStatus::Violation)
    } else if any_open || !batch.errors.is_empty() {
        println!("result: INCOMPLETE");
        Ok(RunStatus::Incomplete)
    } else {
        Ok(RunStatus::Clean)
    }
}

/// Resolves a gate by the name of the net it drives.
fn gate_by_output(circuit: &Circuit, name: &str) -> Result<ltt_netlist::GateId, Error> {
    let net = circuit
        .net_by_name(name)
        .ok_or_else(|| Error::invalid(format!("no net named `{name}`")))?;
    circuit
        .net(net)
        .driver()
        .ok_or_else(|| Error::invalid(format!("`{name}` is a primary input, not a gate output")))
}

/// Parses `--set-delay GATE=D|GATE=LO:HI` and `--rewire GATE=a,b,..`
/// specs into [`CircuitEdit`]s against `circuit`.
fn parse_edits(circuit: &Circuit, opts: &Options) -> Result<Vec<CircuitEdit>, Error> {
    let mut edits = Vec::new();
    for spec in &opts.set_delay {
        let (gate, delay) = spec
            .split_once('=')
            .ok_or_else(|| Error::usage("--set-delay expects GATE=D or GATE=LO:HI"))?;
        let bad = || Error::usage("--set-delay expects GATE=D or GATE=LO:HI with integers");
        let delay = match delay.split_once(':') {
            Some((lo, hi)) => {
                let (lo, hi): (u32, u32) = (
                    lo.parse().map_err(|_| bad())?,
                    hi.parse().map_err(|_| bad())?,
                );
                if lo > hi {
                    return Err(Error::usage("--set-delay interval needs LO <= HI"));
                }
                DelayInterval::new(lo, hi)
            }
            None => DelayInterval::fixed(delay.parse().map_err(|_| bad())?),
        };
        edits.push(CircuitEdit::SetDelay {
            gate: gate_by_output(circuit, gate)?,
            delay,
        });
    }
    for spec in &opts.rewire {
        let (gate, inputs) = spec
            .split_once('=')
            .ok_or_else(|| Error::usage("--rewire expects GATE=a,b,.."))?;
        let inputs = inputs
            .split(',')
            .map(|n| {
                circuit
                    .net_by_name(n.trim())
                    .ok_or_else(|| Error::invalid(format!("no net named `{n}` (in --rewire)")))
            })
            .collect::<Result<Vec<NetId>, Error>>()?;
        edits.push(CircuitEdit::Rewire {
            gate: gate_by_output(circuit, gate)?,
            inputs,
        });
    }
    Ok(edits)
}

/// The exit status a completed batch maps to (same contract as `check`).
fn batch_status(batch: &ltt_core::BatchCheck) -> RunStatus {
    if batch.summary.violations > 0 {
        RunStatus::Violation
    } else if batch.summary.undecided > 0 || !batch.errors.is_empty() {
        RunStatus::Incomplete
    } else {
        RunStatus::Clean
    }
}

/// `ltt patch`: apply ECO edits and re-verify **incrementally**. The
/// edited revision is rebased onto the already-prepared session —
/// structural analyses survive delay-only edits, and every per-output
/// cone untouched by the dirty nets keeps its warm state — instead of
/// being prepared from scratch. A cold session on the edited circuit is
/// also run as the reference: its verdicts must be bit-identical, and
/// the printed ratio is the incremental speedup. The exit code reflects
/// the *edited* circuit's checks.
fn cmd_patch(circuit: &Circuit, opts: &Options) -> Result<RunStatus, Error> {
    let delta = opts
        .delta
        .ok_or_else(|| Error::usage("patch needs --delta N"))?;
    if opts.set_delay.is_empty() && opts.rewire.is_empty() {
        return Err(Error::usage(
            "patch needs at least one --set-delay or --rewire",
        ));
    }
    let edits = parse_edits(circuit, opts)?;
    let config = config_from(opts);
    let runner = runner_from(opts);
    let checks: Vec<(NetId, i64)> = resolve_outputs(circuit, opts)?
        .into_iter()
        .map(|o| (o, delta))
        .collect();

    // Baseline: prepare and verify the pre-edit circuit — the warm
    // session the incremental path rebases.
    let t = Instant::now();
    let session = CheckSession::new(circuit, config.clone());
    let baseline = runner.run(&session, &checks);
    let baseline_ms = t.elapsed().as_secs_f64() * 1e3;

    let outcome = circuit
        .apply_edit(&edits)
        .map_err(|e| Error::invalid(e.to_string()))?;
    let dirty: Vec<&str> = outcome
        .dirty
        .iter()
        .map(|&n| outcome.circuit.net(n).name())
        .collect();
    println!(
        "applied {} edit(s): {} dirty net(s) [{}], {}",
        edits.len(),
        dirty.len(),
        dirty.join(" "),
        if outcome.structural {
            "structural"
        } else {
            "delay-only"
        }
    );

    // Incremental: rebase the warm session onto the edited revision and
    // re-run the same checks.
    let t = Instant::now();
    let rebased = session.rebase(
        Arc::new(outcome.circuit.clone()),
        &outcome.dirty,
        outcome.structural,
    );
    let incremental = runner.run(&rebased, &checks);
    let incremental_ms = t.elapsed().as_secs_f64() * 1e3;

    // Cold reference: the edited circuit prepared from scratch.
    let t = Instant::now();
    let cold_session = CheckSession::new(&outcome.circuit, config);
    let cold = runner.run(&cold_session, &checks);
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;

    let identical = incremental
        .reports
        .iter()
        .zip(&cold.reports)
        .all(|(a, b)| a.verdict == b.verdict && a.completeness == b.completeness);
    println!(
        "baseline (pre-edit):    {} check(s) in {baseline_ms:.2} ms",
        baseline.summary.checks
    );
    println!(
        "incremental re-verify:  {} check(s) in {incremental_ms:.2} ms (rebase + run)",
        incremental.summary.checks
    );
    println!(
        "cold re-verify:         {} check(s) in {cold_ms:.2} ms",
        cold.summary.checks
    );
    println!(
        "incremental/cold:       {:.2}x — verdicts {}",
        incremental_ms / cold_ms.max(1e-9),
        if identical {
            "bit-identical"
        } else {
            "MISMATCHED (bug)"
        }
    );
    if !identical {
        return Err(Error::invalid(
            "incremental re-verification diverged from the cold session",
        ));
    }
    let s = &incremental.summary;
    println!(
        "result: {} safe, {} violated, {} undecided, {} failed",
        s.no_violation, s.violations, s.undecided, s.failed
    );
    Ok(batch_status(&incremental))
}

fn cmd_delay(circuit: &Circuit, opts: &Options) -> Result<RunStatus, Error> {
    let mut config = config_from(opts);
    let recorder = trace_recorder(opts, &mut config);
    let arrival = circuit.arrival_times();
    let session = CheckSession::new(circuit, config);
    let outputs = resolve_outputs(circuit, opts)?;
    // The all-outputs case fans the per-output searches over the runner's
    // workers; a single --output just runs in place (under the same
    // wall-clock budget, if one was given).
    let results: Vec<Result<DelaySearch, CheckError>> = if opts.engine != Engine::Narrow {
        // SAT and hybrid searches run in place: the SAT backend is the
        // cross-check path, so sequential + budget-shared beats fanning
        // encoder memory over workers.
        let budget = match opts.deadline_ms {
            Some(ms) => {
                Budget::unlimited().with_deadline(Instant::now() + Duration::from_millis(ms))
            }
            None => Budget::unlimited(),
        };
        outputs
            .iter()
            .map(|&o| Ok(ltt_sat::exact_delay_budgeted(&session, o, &budget)))
            .collect()
    } else if outputs.len() == circuit.outputs().len() {
        runner_from(opts).try_exact_delays(&session)
    } else {
        let budget = match opts.deadline_ms {
            Some(ms) => {
                Budget::unlimited().with_deadline(Instant::now() + Duration::from_millis(ms))
            }
            None => Budget::unlimited(),
        };
        outputs
            .iter()
            .map(|&o| Ok(session.exact_delay_budgeted(o, &budget)))
            .collect()
    };
    let mut incomplete = false;
    for (&out, result) in outputs.iter().zip(&results) {
        let name = circuit.net(out).name();
        let top = arrival[out.index()];
        match result {
            Ok(search) if search.proven_exact => {
                let marker = if search.delay < top {
                    "  ** longest path FALSE **"
                } else {
                    ""
                };
                println!(
                    "{name}: exact {} (topological {top}, {} backtracks){marker}",
                    search.delay, search.backtracks
                );
            }
            Ok(search) => {
                incomplete = true;
                println!(
                    "{name}: bounds [{}, {}] (topological {top}; search incomplete after {} backtracks)",
                    search.delay, search.upper_bound, search.backtracks
                );
            }
            Err(e) => {
                incomplete = true;
                println!("{name}: {e}");
            }
        }
    }
    write_trace(opts, recorder.as_deref())?;
    if incomplete {
        println!("result: INCOMPLETE");
        Ok(RunStatus::Incomplete)
    } else {
        Ok(RunStatus::Clean)
    }
}

/// When `--trace FILE` was given, attaches a fresh recorder to the config
/// and returns it; otherwise leaves the config's (disabled) handle alone.
fn trace_recorder(opts: &Options, config: &mut VerifyConfig) -> Option<std::sync::Arc<Recorder>> {
    opts.trace.as_ref().map(|_| {
        let recorder = std::sync::Arc::new(Recorder::new());
        config.obs = Obs::recording(recorder.clone());
        recorder
    })
}

/// Writes the Chrome-trace JSON collected by `recorder` to the `--trace`
/// path, if both exist.
fn write_trace(opts: &Options, recorder: Option<&Recorder>) -> Result<(), Error> {
    let (Some(path), Some(recorder)) = (&opts.trace, recorder) else {
        return Ok(());
    };
    std::fs::write(path, recorder.chrome_trace()).map_err(|e| Error::Io {
        path: path.clone(),
        message: e.to_string(),
    })?;
    println!("wrote trace {path} ({} spans)", recorder.len());
    Ok(())
}

fn cmd_report(circuit: &Circuit, opts: &Options) -> Result<RunStatus, Error> {
    let deadline = opts
        .deadline
        .ok_or_else(|| Error::usage("report needs --deadline N"))?;
    let report = SlackReport::compute(circuit, deadline);
    println!(
        "deadline {deadline}: worst slack {}",
        report
            .worst_slack()
            .map_or("-".to_string(), |s| s.to_string())
    );
    let mut rows: Vec<(i64, NetId)> = circuit
        .net_ids()
        .filter_map(|n| report.slack[n.index()].map(|s| (s, n)))
        .collect();
    rows.sort();
    println!(
        "{:<20} {:>8} {:>8} {:>8}",
        "net", "arrival", "required", "slack"
    );
    for (slack, net) in rows.iter().take(15) {
        println!(
            "{:<20} {:>8} {:>8} {:>8}",
            circuit.net(*net).name(),
            report.arrival[net.index()],
            report.required[net.index()].expect("covered"),
            slack
        );
    }
    if rows.len() > 15 {
        println!("… ({} more nets)", rows.len() - 15);
    }
    if report.is_violated() {
        println!("note: negative topological slack may still be a false path —");
        println!("      run `ltt check --delta {deadline}` for the exact answer");
    }
    Ok(RunStatus::Clean)
}

fn parse_vector(circuit: &Circuit, bits: &str, flag: &str) -> Result<Vec<bool>, Error> {
    if bits.len() != circuit.inputs().len() {
        return Err(Error::usage(format!(
            "{flag} needs {} bits (one per input, in declaration order)",
            circuit.inputs().len()
        )));
    }
    bits.chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(Error::usage(format!("{flag}: invalid bit `{other}`"))),
        })
        .collect()
}

fn cmd_simulate(circuit: &Circuit, opts: &Options) -> Result<RunStatus, Error> {
    let v1 = parse_vector(
        circuit,
        opts.v1
            .as_deref()
            .ok_or_else(|| Error::usage("simulate needs --v1 BITS"))?,
        "--v1",
    )?;
    let v2 = parse_vector(
        circuit,
        opts.v2
            .as_deref()
            .ok_or_else(|| Error::usage("simulate needs --v2 BITS"))?,
        "--v2",
    )?;
    let inputs: Vec<WaveformTrace> = v1
        .iter()
        .zip(&v2)
        .map(|(&a, &b)| WaveformTrace::new(a, vec![(0, b)]))
        .collect();
    let traces = simulate(circuit, &inputs);
    let counts = transition_counts(&traces);
    for &o in circuit.outputs() {
        let tr = &traces[o.index()];
        println!(
            "{}: settles to {} at {} ({} transitions)",
            circuit.net(o).name(),
            u8::from(tr.settles_to()),
            tr.last_event().unwrap_or(0).max(0),
            tr.num_transitions()
        );
    }
    let total: usize = counts.iter().sum();
    println!(
        "total transitions across {} nets: {total}",
        circuit.num_nets()
    );
    if let Some(path) = &opts.vcd {
        std::fs::write(path, write_vcd(circuit, &traces)).map_err(|e| Error::Io {
            path: path.clone(),
            message: e.to_string(),
        })?;
        println!("wrote {path}");
    }
    Ok(RunStatus::Clean)
}

fn cmd_explain(circuit: &Circuit, opts: &Options) -> Result<RunStatus, Error> {
    let delta = opts
        .delta
        .ok_or_else(|| Error::usage("explain needs --delta N"))?;
    for out in resolve_outputs(circuit, opts)? {
        print!("{}", explain(circuit, out, delta));
        println!();
    }
    Ok(RunStatus::Clean)
}

fn cmd_convert(circuit: &Circuit, opts: &Options) -> Result<RunStatus, Error> {
    match opts.to.as_deref() {
        Some("bench") => {
            print!("{}", write_bench(circuit));
            Ok(RunStatus::Clean)
        }
        Some("verilog") => {
            print!("{}", write_verilog(circuit));
            Ok(RunStatus::Clean)
        }
        Some(other) => Err(Error::usage(format!("unknown target format `{other}`"))),
        None => Err(Error::usage("convert needs --to bench|verilog")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn write_temp(name: &str, contents: &str) -> String {
        let path = std::env::temp_dir().join(format!("ltt_cli_test_{name}"));
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(contents.as_bytes()).unwrap();
        path.to_string_lossy().into_owned()
    }

    const C17: &str = "INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn info_runs_on_bench_file() {
        let path = write_temp("info.bench", C17);
        assert_eq!(run(&args(&["info", &path])), Ok(RunStatus::Clean));
    }

    #[test]
    fn check_exit_statuses_follow_the_verdict() {
        let path = write_temp("check.bench", C17);
        // δ above topological: safe → exit 0.
        assert_eq!(
            run(&args(&["check", &path, "--delta", "31"])),
            Ok(RunStatus::Clean)
        );
        // δ = exact: violated → exit 1.
        assert_eq!(
            run(&args(&["check", &path, "--delta", "30"])),
            Ok(RunStatus::Violation)
        );
        // Search disabled: the check stays open → exit 2.
        assert_eq!(
            run(&args(&["check", &path, "--delta", "30", "--no-search"])),
            Ok(RunStatus::Incomplete)
        );
    }

    #[test]
    fn cone_modes_agree_on_the_verdict() {
        let path = write_temp("cone.bench", C17);
        for cone in ["auto", "off", "sliced", "masked"] {
            assert_eq!(
                run(&args(&["check", &path, "--delta", "30", "--cone", cone])),
                Ok(RunStatus::Violation),
                "--cone {cone}"
            );
        }
        assert!(run(&args(&["check", &path, "--delta", "30", "--cone", "x"])).is_err());
    }

    #[test]
    fn patch_reverifies_the_edited_circuit() {
        let path = write_temp("patch.bench", C17);
        // Slowing gate 16 (on the three-level critical path) to 11 raises
        // the c17 critical path to 31: the pre-edit circuit is safe at
        // δ=31, the patched one violates.
        assert_eq!(
            run(&args(&[
                "patch",
                &path,
                "--delta",
                "31",
                "--set-delay",
                "16=11",
            ])),
            Ok(RunStatus::Violation)
        );
        // Speeding it up instead keeps δ=31 clean.
        assert_eq!(
            run(&args(&[
                "patch",
                &path,
                "--delta",
                "31",
                "--set-delay",
                "10=9"
            ])),
            Ok(RunStatus::Clean)
        );
        // A structural rewire goes through the same incremental path.
        assert_eq!(
            run(&args(&[
                "patch", &path, "--delta", "31", "--rewire", "10=1,2",
            ])),
            Ok(RunStatus::Clean)
        );
        // Usage errors: no edits, bad spec, unknown gate.
        assert!(run(&args(&["patch", &path, "--delta", "31"])).is_err());
        assert!(run(&args(&[
            "patch",
            &path,
            "--delta",
            "31",
            "--set-delay",
            "10"
        ]))
        .is_err());
        assert!(run(&args(&[
            "patch",
            &path,
            "--delta",
            "31",
            "--set-delay",
            "zz=5"
        ]))
        .is_err());
        // Rewiring a gate to read its own output is a rejected edit.
        assert!(run(&args(&[
            "patch", &path, "--delta", "31", "--rewire", "10=10,1"
        ]))
        .is_err());
    }

    #[test]
    fn exit_codes_cover_the_contract() {
        assert_eq!(RunStatus::Clean.exit_code(), 0);
        assert_eq!(RunStatus::Violation.exit_code(), 1);
        assert_eq!(RunStatus::Incomplete.exit_code(), 2);
        assert_eq!(Error::usage("x").exit_code(), 3);
    }

    #[test]
    fn check_with_assumption() {
        // Pinning input 3 to 1 makes NAND(1,3) = NOT(1)… the 30-paths run
        // through net 11/16; pinning 2 = 0 forces 16 = 1 early, killing
        // output 22's late paths through 16.
        let path = write_temp("assume.bench", C17);
        assert_eq!(
            run(&args(&[
                "check", &path, "--delta", "30", "--output", "22", "--assume", "2=0",
            ])),
            Ok(RunStatus::Clean)
        );
    }

    #[test]
    fn delay_reports_exact() {
        let path = write_temp("delay.bench", C17);
        assert_eq!(run(&args(&["delay", &path])), Ok(RunStatus::Clean));
        assert_eq!(
            run(&args(&["delay", &path, "--output", "22", "--delay", "7"])),
            Ok(RunStatus::Clean)
        );
    }

    #[test]
    fn jobs_flag_keeps_verdicts() {
        let path = write_temp("jobs.bench", C17);
        // Same exit status as serial for every job count.
        for jobs in ["1", "2", "8"] {
            assert_eq!(
                run(&args(&["check", &path, "--delta", "31", "--jobs", jobs])),
                Ok(RunStatus::Clean)
            );
            assert_eq!(
                run(&args(&["check", &path, "--delta", "30", "--jobs", jobs])),
                Ok(RunStatus::Violation)
            );
            assert_eq!(
                run(&args(&["delay", &path, "--jobs", jobs])),
                Ok(RunStatus::Clean)
            );
        }
        assert!(run(&args(&["check", &path, "--delta", "31", "--jobs", "x"])).is_err());
    }

    #[test]
    fn fail_fast_still_finds_the_violation() {
        let path = write_temp("failfast.bench", C17);
        for jobs in ["1", "4"] {
            assert_eq!(
                run(&args(&[
                    "check",
                    &path,
                    "--delta",
                    "30",
                    "--fail-fast",
                    "--jobs",
                    jobs
                ])),
                Ok(RunStatus::Violation)
            );
        }
    }

    #[test]
    fn expired_deadline_is_incomplete_not_an_error() {
        let path = write_temp("deadline.bench", C17);
        // A 0 ms budget trips before any check decides: exit 2, and the
        // degraded run must never claim safety or violation.
        assert_eq!(
            run(&args(&[
                "check",
                &path,
                "--delta",
                "30",
                "--deadline-ms",
                "0"
            ])),
            Ok(RunStatus::Incomplete)
        );
        assert_eq!(
            run(&args(&["delay", &path, "--deadline-ms", "0"])),
            Ok(RunStatus::Incomplete)
        );
        // The single-output delay path takes the same budget.
        assert_eq!(
            run(&args(&[
                "delay",
                &path,
                "--output",
                "22",
                "--deadline-ms",
                "0"
            ])),
            Ok(RunStatus::Incomplete)
        );
        assert!(run(&args(&[
            "check",
            &path,
            "--delta",
            "30",
            "--deadline-ms",
            "x"
        ]))
        .is_err());
    }

    #[test]
    fn report_and_convert_run() {
        let path = write_temp("report.bench", C17);
        assert_eq!(
            run(&args(&["report", &path, "--deadline", "25"])),
            Ok(RunStatus::Clean)
        );
        assert_eq!(
            run(&args(&["convert", &path, "--to", "verilog"])),
            Ok(RunStatus::Clean)
        );
        assert_eq!(
            run(&args(&["convert", &path, "--to", "bench"])),
            Ok(RunStatus::Clean)
        );
    }

    #[test]
    fn verilog_input_detected_by_extension() {
        let src = "module t (a, y);\n input a; output y;\n not (y, a);\nendmodule\n";
        let path = write_temp("input.v", src);
        assert_eq!(run(&args(&["info", &path])), Ok(RunStatus::Clean));
        assert_eq!(run(&args(&["delay", &path])), Ok(RunStatus::Clean));
    }

    #[test]
    fn sdf_annotation_applies() {
        let bench = write_temp("sdf.bench", C17);
        let sdf = write_temp(
            "delays.sdf",
            r#"(DELAYFILE (CELL (INSTANCE 22) (DELAY (ABSOLUTE (IOPATH a b (99))))))"#,
        );
        assert_eq!(
            run(&args(&["info", &bench, "--sdf", &sdf])),
            Ok(RunStatus::Clean)
        );
    }

    #[test]
    fn errors_are_reported_with_exit_code_3() {
        let usage_exit = |r: Result<RunStatus, Error>| r.unwrap_err().exit_code();
        assert_eq!(usage_exit(run(&args(&["frobnicate", "x"]))), 3);
        assert_eq!(
            usage_exit(run(&args(&["check", "/nonexistent.bench", "--delta", "1"]))),
            3
        );
        let path = write_temp("err.bench", C17);
        assert_eq!(usage_exit(run(&args(&["check", &path]))), 3); // missing --delta
        assert_eq!(usage_exit(run(&args(&["check", &path, "--delta", "x"]))), 3);
        assert_eq!(
            usage_exit(run(&args(&["convert", &path, "--to", "blif"]))),
            3
        );
        assert_eq!(
            usage_exit(run(&args(&[
                "check", &path, "--delta", "1", "--assume", "zz=1"
            ]))),
            3
        );
    }

    #[test]
    fn help_prints() {
        assert_eq!(run(&args(&["help"])), Ok(RunStatus::Clean));
    }

    #[test]
    fn explain_runs() {
        let path = write_temp("explain.bench", C17);
        assert_eq!(
            run(&args(&["explain", &path, "--delta", "30"])),
            Ok(RunStatus::Clean)
        );
        assert_eq!(
            run(&args(&[
                "explain", &path, "--delta", "31", "--output", "22",
            ])),
            Ok(RunStatus::Clean)
        );
        assert!(run(&args(&["explain", &path])).is_err());
    }

    #[test]
    fn trace_flag_emits_chrome_trace_json() {
        use ltt_serve::Json;
        let path = write_temp("trace.bench", C17);
        let trace = std::env::temp_dir().join("ltt_cli_test_trace.json");
        let trace_s = trace.to_string_lossy().into_owned();
        assert_eq!(
            run(&args(&[
                "check", &path, "--delta", "30", "--trace", &trace_s
            ])),
            Ok(RunStatus::Violation)
        );
        let text = std::fs::read_to_string(&trace).unwrap();
        let json = ltt_serve::decode(text.trim()).expect("trace file is valid JSON");
        let events = json
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        assert!(!events.is_empty());
        for event in events {
            // chrome://tracing needs every one of these on a complete
            // event; a missing field renders as an empty timeline.
            assert_eq!(event.get("ph").and_then(Json::as_str), Some("X"));
            for field in ["name", "cat", "ts", "dur", "pid", "tid"] {
                assert!(
                    event.get(field).is_some(),
                    "missing {field}: {}",
                    event.encode()
                );
            }
        }
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        for stage in ["check.narrowing", "check.dominators"] {
            assert!(names.contains(&stage), "no {stage} span in {names:?}");
        }
        // The same run without --trace exits identically (the recorder
        // must never change what the pipeline computes).
        assert_eq!(
            run(&args(&["check", &path, "--delta", "30"])),
            Ok(RunStatus::Violation)
        );
    }

    #[test]
    fn simulate_with_vcd() {
        let path = write_temp("sim.bench", C17);
        let vcd = std::env::temp_dir().join("ltt_cli_test_sim.vcd");
        let vcd_s = vcd.to_string_lossy().into_owned();
        assert_eq!(
            run(&args(&[
                "simulate", &path, "--v1", "00000", "--v2", "11111", "--vcd", &vcd_s,
            ])),
            Ok(RunStatus::Clean)
        );
        let contents = std::fs::read_to_string(&vcd).unwrap();
        assert!(contents.contains("$enddefinitions"));
        // Bad vector lengths and bits are rejected.
        assert!(run(&args(&["simulate", &path, "--v1", "0", "--v2", "11111"])).is_err());
        assert!(run(&args(&[
            "simulate", &path, "--v1", "0000x", "--v2", "11111"
        ]))
        .is_err());
        assert!(run(&args(&["simulate", &path, "--v1", "00000"])).is_err());
    }
}
