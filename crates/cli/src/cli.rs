//! Argument parsing and subcommand implementations for the `ltt` binary.

use ltt_core::{
    explain, BatchRunner, CheckSession, DelayMode, DelaySearch, LearningMode, Stage, Verdict,
    VerifyConfig,
};
use ltt_netlist::bench_format::{parse_bench, write_bench};
use ltt_netlist::sdf::apply_sdf;
use ltt_netlist::verilog::{parse_verilog, write_verilog};
use ltt_netlist::{Circuit, DelayInterval, NetId};
use ltt_sta::{simulate, transition_counts, write_vcd, SlackReport, WaveformTrace};
use ltt_waveform::Level;

/// Parsed common options.
struct Options {
    file: String,
    format: Option<String>,
    delay: u32,
    sdf: Option<String>,
    output: Option<String>,
    delta: Option<i64>,
    deadline: Option<i64>,
    to: Option<String>,
    v1: Option<String>,
    v2: Option<String>,
    vcd: Option<String>,
    assumptions: Vec<(String, Level)>,
    mode: DelayMode,
    dominators: bool,
    stems: bool,
    search: bool,
    learning: bool,
    max_backtracks: u64,
    jobs: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            file: String::new(),
            format: None,
            delay: 10,
            sdf: None,
            output: None,
            delta: None,
            deadline: None,
            to: None,
            v1: None,
            v2: None,
            vcd: None,
            assumptions: Vec::new(),
            mode: DelayMode::Floating,
            dominators: true,
            stems: true,
            search: true,
            learning: true,
            max_backtracks: 100_000,
            jobs: 0,
        }
    }
}

const USAGE: &str = "usage: ltt <info|check|delay|report|convert> <netlist> [options]
run `ltt help` for the full option list";

/// Entry point used by `main` (and the tests).
pub fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err(USAGE.to_string());
    };
    if command == "help" || command == "--help" || command == "-h" {
        println!("{}", long_help());
        return Ok(());
    }
    let opts = parse_options(&args[1..])?;
    let circuit = load_circuit(&opts)?;
    match command.as_str() {
        "info" => cmd_info(&circuit),
        "check" => cmd_check(&circuit, &opts),
        "delay" => cmd_delay(&circuit, &opts),
        "report" => cmd_report(&circuit, &opts),
        "convert" => cmd_convert(&circuit, &opts),
        "simulate" => cmd_simulate(&circuit, &opts),
        "explain" => cmd_explain(&circuit, &opts),
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

fn long_help() -> String {
    "ltt — false-path-aware gate-level timing verification
(waveform narrowing with last-transition-time constraint propagation,
after Kassab–Cerny–Aourid–Krodel, DATE 1998)

COMMANDS
  info    <netlist>                 circuit statistics
  check   <netlist> --delta N      can any output transition at/after N?
  delay   <netlist>                exact floating-mode delay per output
  report  <netlist> --deadline N   topological slack report
  convert <netlist> --to FMT       rewrite as bench|verilog
  simulate <netlist> --v1 BITS --v2 BITS [--vcd FILE]
                                   exact two-vector waveform simulation
  explain <netlist> --delta N      where could the violation live?
                                   (carriers, dominators, stems)

OPTIONS
  --format bench|verilog    input format (default: by file extension)
  --delay D                 per-gate delay when the format has none (10)
  --sdf FILE                back-annotate delays from an SDF file
  --output NAME             restrict to one primary output
  --assume NET=0|1          pin a net's settling value (repeatable)
  --mode floating|transition
  --no-dominators --no-stems --no-search --no-learning
  --max-backtracks N        case-analysis budget (100000)
  --jobs N                  worker threads for check/delay batches
                            (0 = one per hardware thread, the default;
                            results are identical for every N)"
        .to_string()
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter().peekable();
    let mut positional = Vec::new();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--format" => opts.format = Some(value("--format")?),
            "--delay" => {
                opts.delay = value("--delay")?
                    .parse()
                    .map_err(|_| "--delay needs an integer".to_string())?
            }
            "--sdf" => opts.sdf = Some(value("--sdf")?),
            "--output" => opts.output = Some(value("--output")?),
            "--delta" => {
                opts.delta = Some(
                    value("--delta")?
                        .parse()
                        .map_err(|_| "--delta needs an integer".to_string())?,
                )
            }
            "--deadline" => {
                opts.deadline = Some(
                    value("--deadline")?
                        .parse()
                        .map_err(|_| "--deadline needs an integer".to_string())?,
                )
            }
            "--to" => opts.to = Some(value("--to")?),
            "--v1" => opts.v1 = Some(value("--v1")?),
            "--v2" => opts.v2 = Some(value("--v2")?),
            "--vcd" => opts.vcd = Some(value("--vcd")?),
            "--assume" => {
                let spec = value("--assume")?;
                let (net, v) = spec
                    .split_once('=')
                    .ok_or_else(|| "--assume expects NET=0 or NET=1".to_string())?;
                let level = match v {
                    "0" => Level::Zero,
                    "1" => Level::One,
                    _ => return Err("--assume expects NET=0 or NET=1".to_string()),
                };
                opts.assumptions.push((net.to_string(), level));
            }
            "--mode" => {
                opts.mode = match value("--mode")?.as_str() {
                    "floating" => DelayMode::Floating,
                    "transition" => DelayMode::Transition,
                    other => return Err(format!("unknown mode `{other}`")),
                }
            }
            "--no-dominators" => opts.dominators = false,
            "--no-stems" => opts.stems = false,
            "--no-search" => opts.search = false,
            "--no-learning" => opts.learning = false,
            "--max-backtracks" => {
                opts.max_backtracks = value("--max-backtracks")?
                    .parse()
                    .map_err(|_| "--max-backtracks needs an integer".to_string())?
            }
            "--jobs" => {
                opts.jobs = value("--jobs")?
                    .parse()
                    .map_err(|_| "--jobs needs an integer".to_string())?
            }
            other if other.starts_with("--") => return Err(format!("unknown option `{other}`")),
            _ => positional.push(arg.clone()),
        }
    }
    match positional.as_slice() {
        [file] => opts.file = file.clone(),
        [] => return Err("missing netlist file".to_string()),
        more => return Err(format!("unexpected arguments: {more:?}")),
    }
    Ok(opts)
}

fn load_circuit(opts: &Options) -> Result<Circuit, String> {
    let text = std::fs::read_to_string(&opts.file)
        .map_err(|e| format!("cannot read `{}`: {e}", opts.file))?;
    let format = match &opts.format {
        Some(f) => f.clone(),
        None if opts.file.ends_with(".v") || opts.file.ends_with(".sv") => "verilog".into(),
        None => "bench".into(),
    };
    let delay = DelayInterval::fixed(opts.delay);
    let circuit = match format.as_str() {
        "bench" => parse_bench(&opts.file, &text, delay).map_err(|e| e.to_string())?,
        "verilog" => parse_verilog(&text, delay).map_err(|e| e.to_string())?,
        other => return Err(format!("unknown format `{other}`")),
    };
    match &opts.sdf {
        None => Ok(circuit),
        Some(path) => {
            let sdf =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            apply_sdf(&circuit, &sdf).map_err(|e| e.to_string())
        }
    }
}

fn config_from(opts: &Options) -> VerifyConfig {
    VerifyConfig {
        delay_mode: opts.mode,
        learning: if opts.learning {
            LearningMode::Stems
        } else {
            LearningMode::Off
        },
        dominators: opts.dominators,
        stem_correlation: opts.stems,
        case_analysis: opts.search,
        max_backtracks: opts.max_backtracks,
        certify_vectors: true,
    }
}

fn resolve_outputs(circuit: &Circuit, opts: &Options) -> Result<Vec<NetId>, String> {
    match &opts.output {
        None => Ok(circuit.outputs().to_vec()),
        Some(name) => {
            let net = circuit
                .net_by_name(name)
                .ok_or_else(|| format!("no net named `{name}`"))?;
            Ok(vec![net])
        }
    }
}

fn resolve_assumptions(circuit: &Circuit, opts: &Options) -> Result<Vec<(NetId, Level)>, String> {
    opts.assumptions
        .iter()
        .map(|(name, level)| {
            circuit
                .net_by_name(name)
                .map(|n| (n, *level))
                .ok_or_else(|| format!("no net named `{name}` (in --assume)"))
        })
        .collect()
}

fn stage_name(stage: Stage) -> &'static str {
    match stage {
        Stage::Narrowing => "narrowing",
        Stage::Dominators => "timing dominators",
        Stage::StemCorrelation => "stem correlation",
        Stage::CaseAnalysis => "case analysis",
    }
}

fn cmd_info(circuit: &Circuit) -> Result<(), String> {
    println!("name:            {}", circuit.name());
    println!("gates:           {}", circuit.num_gates());
    println!("nets:            {}", circuit.num_nets());
    println!("inputs:          {}", circuit.inputs().len());
    println!("outputs:         {}", circuit.outputs().len());
    println!("depth:           {} levels", circuit.depth());
    println!("topological:     {}", circuit.topological_delay());
    println!("min topological: {}", circuit.min_topological_delay());
    println!("fanout stems:    {}", circuit.num_fanout_stems());
    Ok(())
}

fn cmd_check(circuit: &Circuit, opts: &Options) -> Result<(), String> {
    let delta = opts.delta.ok_or("check needs --delta N")?;
    let config = config_from(opts);
    let assumptions = resolve_assumptions(circuit, opts)?;
    let session = CheckSession::new(circuit, config);
    let runner = BatchRunner::new(opts.jobs);
    let checks: Vec<(NetId, i64)> = resolve_outputs(circuit, opts)?
        .into_iter()
        .map(|o| (o, delta))
        .collect();
    let batch = runner.run_under(&session, &checks, &assumptions);
    let mut any_violation = false;
    let mut any_open = false;
    for r in &batch.reports {
        let name = circuit.net(r.output).name();
        match &r.verdict {
            Verdict::NoViolation { stage } => println!(
                "{name}: no transition at or after {delta} is possible (proved by {}, {:.2} ms)",
                stage_name(*stage),
                r.elapsed.as_secs_f64() * 1e3
            ),
            Verdict::Violation { vector } => {
                any_violation = true;
                let pretty: Vec<String> = circuit
                    .inputs()
                    .iter()
                    .zip(vector.iter())
                    .map(|(&n, &v)| format!("{}={}", circuit.net(n).name(), u8::from(v)))
                    .collect();
                println!(
                    "{name}: VIOLATED — certified vector after {} backtracks: {}",
                    r.backtracks,
                    pretty.join(" ")
                );
            }
            Verdict::Possible => {
                any_open = true;
                println!("{name}: possible violation (search disabled; rerun without --no-search)");
            }
            Verdict::Abandoned => {
                any_open = true;
                println!(
                    "{name}: undecided — case analysis abandoned after {} backtracks",
                    r.backtracks
                );
            }
        }
    }
    let s = &batch.summary;
    println!(
        "checked {} output(s) in {:.2} ms with {} job(s): {} safe, {} violated, {} undecided",
        s.checks,
        batch.wall.as_secs_f64() * 1e3,
        runner.jobs(),
        s.no_violation,
        s.violations,
        s.undecided
    );
    println!(
        "  effort: {} events, {} backtracks · stage ms: narrowing {:.2}, dominators {:.2}, stems {:.2}, search {:.2}",
        s.solver.events,
        s.backtracks,
        s.stage_wall.narrowing.as_secs_f64() * 1e3,
        s.stage_wall.dominators.as_secs_f64() * 1e3,
        s.stage_wall.stems.as_secs_f64() * 1e3,
        s.stage_wall.case_analysis.as_secs_f64() * 1e3
    );
    if any_violation {
        Err("timing check violated".to_string())
    } else if any_open {
        Err("timing check undecided".to_string())
    } else {
        Ok(())
    }
}

fn cmd_delay(circuit: &Circuit, opts: &Options) -> Result<(), String> {
    let config = config_from(opts);
    let arrival = circuit.arrival_times();
    let session = CheckSession::new(circuit, config);
    let runner = BatchRunner::new(opts.jobs);
    let outputs = resolve_outputs(circuit, opts)?;
    // The all-outputs case fans the per-output searches over the runner's
    // workers; a single --output just runs in place.
    let searches: Vec<DelaySearch> = if outputs.len() == circuit.outputs().len() {
        runner.exact_delays(&session)
    } else {
        outputs.iter().map(|&o| session.exact_delay(o)).collect()
    };
    for (&out, search) in outputs.iter().zip(&searches) {
        let name = circuit.net(out).name();
        let top = arrival[out.index()];
        if search.proven_exact {
            let marker = if search.delay < top {
                "  ** longest path FALSE **"
            } else {
                ""
            };
            println!(
                "{name}: exact {} (topological {top}, {} backtracks){marker}",
                search.delay, search.backtracks
            );
        } else {
            println!(
                "{name}: bounds [{}, {}] (topological {top}; search abandoned after {} backtracks)",
                search.delay, search.upper_bound, search.backtracks
            );
        }
    }
    Ok(())
}

fn cmd_report(circuit: &Circuit, opts: &Options) -> Result<(), String> {
    let deadline = opts.deadline.ok_or("report needs --deadline N")?;
    let report = SlackReport::compute(circuit, deadline);
    println!(
        "deadline {deadline}: worst slack {}",
        report
            .worst_slack()
            .map_or("-".to_string(), |s| s.to_string())
    );
    let mut rows: Vec<(i64, NetId)> = circuit
        .net_ids()
        .filter_map(|n| report.slack[n.index()].map(|s| (s, n)))
        .collect();
    rows.sort();
    println!(
        "{:<20} {:>8} {:>8} {:>8}",
        "net", "arrival", "required", "slack"
    );
    for (slack, net) in rows.iter().take(15) {
        println!(
            "{:<20} {:>8} {:>8} {:>8}",
            circuit.net(*net).name(),
            report.arrival[net.index()],
            report.required[net.index()].expect("covered"),
            slack
        );
    }
    if rows.len() > 15 {
        println!("… ({} more nets)", rows.len() - 15);
    }
    if report.is_violated() {
        println!("note: negative topological slack may still be a false path —");
        println!("      run `ltt check --delta {deadline}` for the exact answer");
    }
    Ok(())
}

fn parse_vector(circuit: &Circuit, bits: &str, flag: &str) -> Result<Vec<bool>, String> {
    if bits.len() != circuit.inputs().len() {
        return Err(format!(
            "{flag} needs {} bits (one per input, in declaration order)",
            circuit.inputs().len()
        ));
    }
    bits.chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(format!("{flag}: invalid bit `{other}`")),
        })
        .collect()
}

fn cmd_simulate(circuit: &Circuit, opts: &Options) -> Result<(), String> {
    let v1 = parse_vector(
        circuit,
        opts.v1.as_deref().ok_or("simulate needs --v1 BITS")?,
        "--v1",
    )?;
    let v2 = parse_vector(
        circuit,
        opts.v2.as_deref().ok_or("simulate needs --v2 BITS")?,
        "--v2",
    )?;
    let inputs: Vec<WaveformTrace> = v1
        .iter()
        .zip(&v2)
        .map(|(&a, &b)| WaveformTrace::new(a, vec![(0, b)]))
        .collect();
    let traces = simulate(circuit, &inputs);
    let counts = transition_counts(&traces);
    for &o in circuit.outputs() {
        let tr = &traces[o.index()];
        println!(
            "{}: settles to {} at {} ({} transitions)",
            circuit.net(o).name(),
            u8::from(tr.settles_to()),
            tr.last_event().unwrap_or(0).max(0),
            tr.num_transitions()
        );
    }
    let total: usize = counts.iter().sum();
    println!(
        "total transitions across {} nets: {total}",
        circuit.num_nets()
    );
    if let Some(path) = &opts.vcd {
        std::fs::write(path, write_vcd(circuit, &traces))
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_explain(circuit: &Circuit, opts: &Options) -> Result<(), String> {
    let delta = opts.delta.ok_or("explain needs --delta N")?;
    for out in resolve_outputs(circuit, opts)? {
        print!("{}", explain(circuit, out, delta));
        println!();
    }
    Ok(())
}

fn cmd_convert(circuit: &Circuit, opts: &Options) -> Result<(), String> {
    match opts.to.as_deref() {
        Some("bench") => {
            print!("{}", write_bench(circuit));
            Ok(())
        }
        Some("verilog") => {
            print!("{}", write_verilog(circuit));
            Ok(())
        }
        Some(other) => Err(format!("unknown target format `{other}`")),
        None => Err("convert needs --to bench|verilog".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn write_temp(name: &str, contents: &str) -> String {
        let path = std::env::temp_dir().join(format!("ltt_cli_test_{name}"));
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(contents.as_bytes()).unwrap();
        path.to_string_lossy().into_owned()
    }

    const C17: &str = "INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn info_runs_on_bench_file() {
        let path = write_temp("info.bench", C17);
        run(&args(&["info", &path])).unwrap();
    }

    #[test]
    fn check_detects_violation_and_safety() {
        let path = write_temp("check.bench", C17);
        // δ above topological: safe.
        run(&args(&["check", &path, "--delta", "31"])).unwrap();
        // δ = exact: violated → error exit.
        let e = run(&args(&["check", &path, "--delta", "30"])).unwrap_err();
        assert!(e.contains("violated"));
    }

    #[test]
    fn check_with_assumption() {
        // Pinning input 3 to 1 makes NAND(1,3) = NOT(1)… the 30-paths run
        // through net 11/16; pinning 2 = 0 forces 16 = 1 early, killing
        // output 22's late paths through 16.
        let path = write_temp("assume.bench", C17);
        run(&args(&[
            "check", &path, "--delta", "30", "--output", "22", "--assume", "2=0",
        ]))
        .unwrap();
    }

    #[test]
    fn delay_reports_exact() {
        let path = write_temp("delay.bench", C17);
        run(&args(&["delay", &path])).unwrap();
        run(&args(&["delay", &path, "--output", "22", "--delay", "7"])).unwrap();
    }

    #[test]
    fn jobs_flag_keeps_verdicts() {
        let path = write_temp("jobs.bench", C17);
        // Same exit status as serial for every job count.
        for jobs in ["1", "2", "8"] {
            run(&args(&["check", &path, "--delta", "31", "--jobs", jobs])).unwrap();
            let e = run(&args(&["check", &path, "--delta", "30", "--jobs", jobs])).unwrap_err();
            assert!(e.contains("violated"));
            run(&args(&["delay", &path, "--jobs", jobs])).unwrap();
        }
        assert!(run(&args(&["check", &path, "--delta", "31", "--jobs", "x"])).is_err());
    }

    #[test]
    fn report_and_convert_run() {
        let path = write_temp("report.bench", C17);
        run(&args(&["report", &path, "--deadline", "25"])).unwrap();
        run(&args(&["convert", &path, "--to", "verilog"])).unwrap();
        run(&args(&["convert", &path, "--to", "bench"])).unwrap();
    }

    #[test]
    fn verilog_input_detected_by_extension() {
        let src = "module t (a, y);\n input a; output y;\n not (y, a);\nendmodule\n";
        let path = write_temp("input.v", src);
        run(&args(&["info", &path])).unwrap();
        run(&args(&["delay", &path])).unwrap();
    }

    #[test]
    fn sdf_annotation_applies() {
        let bench = write_temp("sdf.bench", C17);
        let sdf = write_temp(
            "delays.sdf",
            r#"(DELAYFILE (CELL (INSTANCE 22) (DELAY (ABSOLUTE (IOPATH a b (99))))))"#,
        );
        run(&args(&["info", &bench, "--sdf", &sdf])).unwrap();
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&args(&["frobnicate", "x"])).is_err());
        assert!(run(&args(&["check", "/nonexistent.bench", "--delta", "1"])).is_err());
        let path = write_temp("err.bench", C17);
        assert!(run(&args(&["check", &path])).is_err()); // missing --delta
        assert!(run(&args(&["check", &path, "--delta", "x"])).is_err());
        assert!(run(&args(&["convert", &path, "--to", "blif"])).is_err());
        assert!(run(&args(&["check", &path, "--delta", "1", "--assume", "zz=1"])).is_err());
    }

    #[test]
    fn help_prints() {
        run(&args(&["help"])).unwrap();
    }

    #[test]
    fn explain_runs() {
        let path = write_temp("explain.bench", C17);
        run(&args(&["explain", &path, "--delta", "30"])).unwrap();
        run(&args(&[
            "explain", &path, "--delta", "31", "--output", "22",
        ]))
        .unwrap();
        assert!(run(&args(&["explain", &path])).is_err());
    }

    #[test]
    fn simulate_with_vcd() {
        let path = write_temp("sim.bench", C17);
        let vcd = std::env::temp_dir().join("ltt_cli_test_sim.vcd");
        let vcd_s = vcd.to_string_lossy().into_owned();
        run(&args(&[
            "simulate", &path, "--v1", "00000", "--v2", "11111", "--vcd", &vcd_s,
        ]))
        .unwrap();
        let contents = std::fs::read_to_string(&vcd).unwrap();
        assert!(contents.contains("$enddefinitions"));
        // Bad vector lengths and bits are rejected.
        assert!(run(&args(&["simulate", &path, "--v1", "0", "--v2", "11111"])).is_err());
        assert!(run(&args(&[
            "simulate", &path, "--v1", "0000x", "--v2", "11111"
        ]))
        .is_err());
        assert!(run(&args(&["simulate", &path, "--v1", "00000"])).is_err());
    }
}
